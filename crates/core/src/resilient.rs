//! Failure resilience for the query path.
//!
//! The paper treats cached partitions as soft state: anything lost to a
//! crashed peer is rebuildable from the source relations (§4). This module
//! supplies the machinery that makes that story operational instead of
//! aspirational:
//!
//! * [`RetryPolicy`] — bounded retries of identifier lookups with
//!   exponential backoff and *deterministic* jitter (drawn from the
//!   network's own [`ars_common::DetRng`] stream, so a seeded run replays
//!   bit-identically);
//! * graceful degradation — when every retry is exhausted the query falls
//!   back to fetching from the source relations, surfaced through
//!   [`crate::QueryOutcome::fell_back_to_source`] and counted in
//!   [`ResilienceStats`], never a panic or an error the caller must
//!   unwrap;
//! * successor replication — [`crate::ChurnNetwork`] places each cached
//!   partition at the first `r` alive successors of its placed identifier
//!   (configured via [`crate::SystemConfig::with_replication`]) and
//!   re-replicates after joins, leaves, and failures, so up to `r - 1`
//!   abrupt crashes leave every bucket findable.

use ars_common::DetRng;

/// Retry schedule for identifier lookups under churn.
///
/// Attempt 1 is the ordinary greedy Chord lookup; subsequent attempts use
/// the failure-aware routing ([`ars_chord::DynamicNetwork::lookup_resilient`])
/// that detours through successor lists, separated by exponentially growing
/// backoff delays. All delays are virtual time — the simulator has no wall
/// clock — and the jitter comes from the deterministic RNG, so retries
/// never break reproducibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per identifier lookup (≥ 1, first try included).
    pub attempts: usize,
    /// Total backoff budget (virtual time units) per identifier; once the
    /// accumulated delays exceed it, remaining attempts are forfeited.
    pub timeout_budget: u64,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: u64,
    /// Cap on the exponential term (jitter rides on top).
    pub max_backoff: u64,
    /// Hop budget handed to the failure-aware routing of retries.
    pub hop_budget: usize,
    /// Optional wall-clock deadline (virtual time units) for one *whole*
    /// query: [`crate::ChurnNetwork::query_resilient`] accumulates every
    /// backoff delay it spends across all `l` identifier lookups, and once
    /// the total reaches the deadline no further retries are scheduled —
    /// remaining identifiers get their first attempt only (an attempt
    /// itself costs no wall time in the simulation; only waiting does).
    /// `None` (the default) disables the budget, preserving bit-for-bit
    /// behavior of earlier revisions. Contrast with `timeout_budget`,
    /// which bounds backoff *per identifier*.
    pub deadline: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            timeout_budget: 10_000,
            base_backoff: 100,
            max_backoff: 1_600,
            hop_budget: 64,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: the plain greedy lookup, take it or
    /// leave it. Failures degrade to source fetch immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            timeout_budget: 0,
            base_backoff: 0,
            max_backoff: 0,
            hop_budget: 0,
            deadline: None,
        }
    }

    /// This policy with a whole-query wall-clock deadline installed.
    pub fn with_deadline(mut self, deadline: u64) -> RetryPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// Backoff delay before retry number `retry` (1-based): exponential
    /// `base · 2^(retry-1)` capped at `max_backoff`, plus jitter uniform in
    /// `[0, base)` drawn from the deterministic stream.
    pub fn backoff(&self, retry: u32, rng: &mut DetRng) -> u64 {
        let shift = (retry.saturating_sub(1)).min(16);
        let exp = self
            .base_backoff
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff);
        let jitter = if self.base_backoff > 0 {
            rng.gen_range_u64(self.base_backoff)
        } else {
            0
        };
        exp + jitter
    }
}

/// Counters describing how hard the resilient query path had to work.
///
/// Separate from [`crate::NetworkStats`]: these only move when something
/// went wrong (or was repaired), so a clean run reports all zeros.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Individual lookup attempts issued, including first tries.
    pub lookups_attempted: u64,
    /// Attempts beyond the first (retries through failure-aware routing).
    pub retries: u64,
    /// Identifier lookups abandoned after the whole retry schedule.
    pub lookups_failed: u64,
    /// Queries in which *no* identifier owner was reachable and the answer
    /// came from the source relations.
    pub source_fallbacks: u64,
    /// Virtual time spent backing off between attempts.
    pub backoff_time: u64,
    /// Re-replication sweeps run after membership changes.
    pub re_replications: u64,
    /// Partition copies created by those sweeps (missing replicas
    /// restored from surviving ones).
    pub replicas_restored: u64,
    /// Partition copies placed at any peer by any path (query caching,
    /// re-replication, anti-entropy repair, leave handover, migration).
    /// With `buckets_lost`/`buckets_recovered` this forms the ledger
    /// `placed == live + lost − recovered` checked by the trace tests.
    pub buckets_placed: u64,
    /// Live partition copies destroyed: abrupt failures and crashes take
    /// down a peer's whole cache; graceful leaves and key migrations count
    /// the drained copies here (and their re-stores in `buckets_placed`).
    pub buckets_lost: u64,
    /// Partition copies rebuilt from a durable log at restart.
    pub buckets_recovered: u64,
    /// Anti-entropy repair rounds run.
    pub repair_rounds: u64,
    /// Partition copies pushed to replica owners by those rounds.
    pub repair_entries_sent: u64,
    /// Queries answered while the network was split and at least one
    /// identifier's global owner was unreachable (mirrors
    /// [`crate::QueryOutcome::partition_degraded`]).
    pub partition_degraded_queries: u64,
    /// Partition copies written anywhere while the network was split —
    /// the divergence that post-heal reconciliation must converge.
    pub partition_writes: u64,
    /// Retries forfeited because the whole-query
    /// [`RetryPolicy::deadline`] was exhausted.
    pub deadline_exhausted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_sane() {
        let p = RetryPolicy::default();
        assert!(p.attempts >= 2, "default must actually retry");
        assert!(p.max_backoff >= p.base_backoff);
        assert!(p.hop_budget > 0);
    }

    #[test]
    fn none_policy_never_retries() {
        let p = RetryPolicy::none();
        assert_eq!(p.attempts, 1);
        let mut rng = DetRng::new(1);
        assert_eq!(p.backoff(1, &mut rng), 0);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            attempts: 6,
            timeout_budget: u64::MAX,
            base_backoff: 100,
            max_backoff: 400,
            hop_budget: 8,
            deadline: None,
        };
        let mut rng = DetRng::new(7);
        let d1 = p.backoff(1, &mut rng);
        let d2 = p.backoff(2, &mut rng);
        let d5 = p.backoff(5, &mut rng);
        assert!((100..200).contains(&d1), "retry 1: base + jitter, got {d1}");
        assert!(
            (200..300).contains(&d2),
            "retry 2: 2·base + jitter, got {d2}"
        );
        assert!(
            (400..500).contains(&d5),
            "retry 5: capped + jitter, got {d5}"
        );
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let mut a = DetRng::new(5);
        let mut b = DetRng::new(5);
        for retry in 1..6 {
            assert_eq!(p.backoff(retry, &mut a), p.backoff(retry, &mut b));
        }
    }

    #[test]
    fn huge_retry_number_does_not_overflow() {
        let p = RetryPolicy::default();
        let mut rng = DetRng::new(0);
        let d = p.backoff(u32::MAX, &mut rng);
        assert!(d <= p.max_backoff + p.base_backoff);
    }

    #[test]
    fn stats_default_all_zero() {
        assert_eq!(
            ResilienceStats::default(),
            ResilienceStats {
                lookups_attempted: 0,
                retries: 0,
                lookups_failed: 0,
                source_fallbacks: 0,
                backoff_time: 0,
                re_replications: 0,
                replicas_restored: 0,
                buckets_placed: 0,
                buckets_lost: 0,
                buckets_recovered: 0,
                repair_rounds: 0,
                repair_entries_sent: 0,
                partition_degraded_queries: 0,
                partition_writes: 0,
                deadline_exhausted: 0,
            }
        );
    }

    #[test]
    fn default_policy_has_no_deadline() {
        // The deadline budget is strictly opt-in: the default policy must
        // behave bit-for-bit like revisions that predate the field.
        assert_eq!(RetryPolicy::default().deadline, None);
        assert_eq!(RetryPolicy::none().deadline, None);
        assert_eq!(
            RetryPolicy::default().with_deadline(500).deadline,
            Some(500)
        );
    }
}
