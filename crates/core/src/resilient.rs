//! Failure resilience for the query path.
//!
//! The paper treats cached partitions as soft state: anything lost to a
//! crashed peer is rebuildable from the source relations (§4). This module
//! supplies the machinery that makes that story operational instead of
//! aspirational:
//!
//! * [`RetryPolicy`] — bounded retries of identifier lookups with
//!   exponential backoff and *deterministic* jitter (drawn from the
//!   network's own [`ars_common::DetRng`] stream, so a seeded run replays
//!   bit-identically);
//! * graceful degradation — when every retry is exhausted the query falls
//!   back to fetching from the source relations, surfaced through
//!   [`crate::QueryOutcome::fell_back_to_source`] and counted in
//!   [`ResilienceStats`], never a panic or an error the caller must
//!   unwrap;
//! * successor replication — [`crate::ChurnNetwork`] places each cached
//!   partition at the first `r` alive successors of its placed identifier
//!   (configured via [`crate::SystemConfig::with_replication`]) and
//!   re-replicates after joins, leaves, and failures, so up to `r - 1`
//!   abrupt crashes leave every bucket findable.

use ars_common::DetRng;
use std::collections::BTreeMap;

/// Virtual service time of a healthy peer answering one fetch, in the same
/// time units as [`RetryPolicy`] backoffs. Gray-slow peers multiply this.
pub const BASE_SERVICE: u64 = 100;

/// Virtual cost of one routing hop on the lookup path.
pub const HOP_COST: u64 = 10;

/// Retry schedule for identifier lookups under churn.
///
/// Attempt 1 is the ordinary greedy Chord lookup; subsequent attempts use
/// the failure-aware routing ([`ars_chord::DynamicNetwork::lookup_resilient`])
/// that detours through successor lists, separated by exponentially growing
/// backoff delays. All delays are virtual time — the simulator has no wall
/// clock — and the jitter comes from the deterministic RNG, so retries
/// never break reproducibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per identifier lookup (≥ 1, first try included).
    pub attempts: usize,
    /// Total backoff budget (virtual time units) per identifier; once the
    /// accumulated delays exceed it, remaining attempts are forfeited.
    pub timeout_budget: u64,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: u64,
    /// Cap on the exponential term (jitter rides on top).
    pub max_backoff: u64,
    /// Hop budget handed to the failure-aware routing of retries.
    pub hop_budget: usize,
    /// Optional wall-clock deadline (virtual time units) for one *whole*
    /// query: [`crate::ChurnNetwork::query_resilient`] accumulates every
    /// backoff delay it spends across all `l` identifier lookups, and once
    /// the total reaches the deadline no further retries are scheduled —
    /// remaining identifiers get their first attempt only (an attempt
    /// itself costs no wall time in the simulation; only waiting does).
    /// `None` (the default) disables the budget, preserving bit-for-bit
    /// behavior of earlier revisions. Contrast with `timeout_budget`,
    /// which bounds backoff *per identifier*.
    pub deadline: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            timeout_budget: 10_000,
            base_backoff: 100,
            max_backoff: 1_600,
            hop_budget: 64,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: the plain greedy lookup, take it or
    /// leave it. Failures degrade to source fetch immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            timeout_budget: 0,
            base_backoff: 0,
            max_backoff: 0,
            hop_budget: 0,
            deadline: None,
        }
    }

    /// This policy with a whole-query wall-clock deadline installed.
    pub fn with_deadline(mut self, deadline: u64) -> RetryPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// Backoff delay before retry number `retry` (1-based): exponential
    /// `base · 2^(retry-1)` plus jitter uniform in `[0, base)` drawn from
    /// the deterministic stream, the whole sum capped at `max_backoff`.
    ///
    /// The jitter is drawn even when the cap swallows it, so the RNG
    /// stream — and therefore every decision downstream of it — is
    /// unchanged from earlier revisions where the cap applied to the
    /// exponential term only and `exp + jitter` could overshoot
    /// `max_backoff` by up to `base_backoff − 1`.
    pub fn backoff(&self, retry: u32, rng: &mut DetRng) -> u64 {
        let shift = (retry.saturating_sub(1)).min(16);
        let exp = self
            .base_backoff
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff);
        let jitter = if self.base_backoff > 0 {
            rng.gen_range_u64(self.base_backoff)
        } else {
            0
        };
        exp.saturating_add(jitter).min(self.max_backoff)
    }
}

/// Per-peer adaptive failure detector in the phi-accrual style: an EWMA of
/// observed response latencies and an EWMA of their absolute deviation feed
/// a suspicion score — "how many deviations above the learned mean is this
/// observation?" — so slowness is judged *relative to the peer's own
/// history*, not against a fixed timeout. A peer that is consistently slow
/// from the start is learned as such; a peer that suddenly degrades spikes
/// the score immediately. Entirely arithmetic: no RNG, no wall clock, so
/// attaching a detector to a run never perturbs replay.
#[derive(Debug, Clone, Default)]
pub struct FailureDetector {
    estimates: BTreeMap<u32, PeerEstimate>,
}

/// Learned latency profile of one peer.
#[derive(Debug, Clone, Copy)]
pub struct PeerEstimate {
    /// EWMA of observed latencies.
    pub mean: f64,
    /// EWMA of absolute deviations from the mean.
    pub dev: f64,
    /// Observations recorded.
    pub samples: u64,
}

/// EWMA smoothing factor: new observations carry 20% weight, so the
/// estimate converges in a handful of probes yet rides out single spikes.
const EWMA_ALPHA: f64 = 0.2;

impl FailureDetector {
    /// A detector with no history.
    pub fn new() -> FailureDetector {
        FailureDetector::default()
    }

    /// Suspicion score of observing latency `latency` from `peer`, judged
    /// against the peer's history *before* this observation is absorbed:
    /// `(latency − mean) / max(dev, mean/8, 1)`. Zero (never negative) for
    /// at-or-below-mean responses and for unknown peers — a peer earns
    /// suspicion only by deviating from its own learned behaviour.
    pub fn suspicion(&self, peer: u32, latency: u64) -> f64 {
        let Some(est) = self.estimates.get(&peer) else {
            return 0.0;
        };
        if est.samples == 0 {
            return 0.0;
        }
        // Floor the deviation so a perfectly stable history (dev → 0)
        // doesn't turn infinitesimal jitter into infinite suspicion.
        let floor = (est.mean / 8.0).max(1.0);
        ((latency as f64 - est.mean) / est.dev.max(floor)).max(0.0)
    }

    /// Absorb one latency observation for `peer`.
    pub fn observe(&mut self, peer: u32, latency: u64) {
        let est = self.estimates.entry(peer).or_insert(PeerEstimate {
            mean: latency as f64,
            dev: 0.0,
            samples: 0,
        });
        let err = latency as f64 - est.mean;
        est.mean += EWMA_ALPHA * err;
        est.dev += EWMA_ALPHA * (err.abs() - est.dev);
        est.samples += 1;
    }

    /// The learned profile of `peer`, if any observation was recorded.
    pub fn estimate(&self, peer: u32) -> Option<&PeerEstimate> {
        self.estimates.get(&peer)
    }

    /// Forget everything about `peer` (e.g. after it leaves the ring).
    pub fn forget(&mut self, peer: u32) {
        self.estimates.remove(&peer);
    }

    /// Number of peers with recorded history.
    pub fn tracked(&self) -> usize {
        self.estimates.len()
    }
}

/// Circuit-breaker configuration shared by every per-peer breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive suspicious observations that trip a closed breaker.
    pub failure_threshold: u32,
    /// Virtual time an open breaker waits before admitting one half-open
    /// probe (deterministic: the transition is a pure function of the
    /// opening instant, not of a timer thread).
    pub cooldown: u64,
    /// Suspicion score (see [`FailureDetector::suspicion`]) at or above
    /// which an observation counts as a failure.
    pub suspicion_threshold: f64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            cooldown: 2_000,
            suspicion_threshold: 3.0,
        }
    }
}

/// Breaker state at a given virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are short-circuited to a replica.
    Open,
    /// Cooldown elapsed: exactly one probe request is admitted; its
    /// outcome closes or re-opens the breaker.
    HalfOpen,
}

/// What a recorded observation did to the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// No state change.
    None,
    /// Closed (or half-open) → open.
    Opened,
    /// Half-open probe succeeded → closed.
    Closed,
}

/// Per-peer circuit breaker: closed → open after `failure_threshold`
/// consecutive suspicious responses, half-open after `cooldown` virtual
/// time units, closed again on a successful probe (re-opened on a failed
/// one). All transitions are pure functions of `(observations, virtual
/// time)` — nothing here can break deterministic replay.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    consecutive_failures: u32,
    /// `Some(instant)` while tripped.
    opened_at: Option<u64>,
}

impl CircuitBreaker {
    /// A closed breaker with the given configuration.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            consecutive_failures: 0,
            opened_at: None,
        }
    }

    /// State at virtual time `now`.
    pub fn state(&self, now: u64) -> BreakerState {
        match self.opened_at {
            None => BreakerState::Closed,
            Some(at) if now >= at.saturating_add(self.config.cooldown) => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// True if a request may be sent to the peer at `now` (closed, or
    /// half-open admitting its probe).
    pub fn allows(&self, now: u64) -> bool {
        self.state(now) != BreakerState::Open
    }

    /// Record the outcome of one admitted request at `now`.
    pub fn record(&mut self, ok: bool, now: u64) -> BreakerTransition {
        match self.state(now) {
            BreakerState::Closed => {
                if ok {
                    self.consecutive_failures = 0;
                    BreakerTransition::None
                } else {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.config.failure_threshold {
                        self.opened_at = Some(now);
                        BreakerTransition::Opened
                    } else {
                        BreakerTransition::None
                    }
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.opened_at = None;
                    self.consecutive_failures = 0;
                    BreakerTransition::Closed
                } else {
                    // Failed probe: re-open, restarting the cooldown.
                    self.opened_at = Some(now);
                    BreakerTransition::Opened
                }
            }
            BreakerState::Open => BreakerTransition::None,
        }
    }
}

/// How hedged lookups derive their backup-launch delay.
///
/// The delay adapts to the *observed* latency distribution: a backup fires
/// once the primary has been outstanding longer than
/// `multiplier × quantile(q)` of recent query latencies, clamped to
/// `[min_delay, max_delay]`. On a healthy network the observed quantile
/// sits far below `min_delay`, so no hedge ever fires and the feature is a
/// pure observer (see the tail-tolerance proptests); once gray-slow peers
/// stretch the tail, the delay tracks the healthy quantile and backups
/// fire exactly for the slow primaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Which latency quantile anchors the delay (e.g. 0.9).
    pub quantile: f64,
    /// Multiplier on the anchored quantile.
    pub multiplier: f64,
    /// Lower clamp — also the zero-history default. Must exceed any
    /// healthy-path latency or hedges fire on clean networks: under the
    /// virtual service model the worst clean fetch costs
    /// `hop_budget × HOP_COST + BASE_SERVICE` (740 at the default budget
    /// of 64), so the default floor of 1 000 guarantees the pure-observer
    /// property unconditionally.
    pub min_delay: u64,
    /// Upper clamp, so one catastrophic tail sample cannot disable
    /// hedging for the rest of a run.
    pub max_delay: u64,
}

impl Default for HedgePolicy {
    fn default() -> HedgePolicy {
        HedgePolicy {
            quantile: 0.9,
            multiplier: 2.0,
            min_delay: 1_000,
            max_delay: 5_000,
        }
    }
}

impl HedgePolicy {
    /// The hedge delay derived from an observed latency histogram.
    pub fn delay(&self, observed: &ars_telemetry::Hist) -> u64 {
        if observed.count == 0 {
            return self.min_delay;
        }
        let anchored = (observed.quantile(self.quantile) as f64 * self.multiplier) as u64;
        anchored.clamp(self.min_delay, self.max_delay)
    }
}

/// Counters describing how hard the resilient query path had to work.
///
/// Separate from [`crate::NetworkStats`]: these only move when something
/// went wrong (or was repaired), so a clean run reports all zeros.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Individual lookup attempts issued, including first tries.
    pub lookups_attempted: u64,
    /// Attempts beyond the first (retries through failure-aware routing).
    pub retries: u64,
    /// Identifier lookups abandoned after the whole retry schedule.
    pub lookups_failed: u64,
    /// Queries in which *no* identifier owner was reachable and the answer
    /// came from the source relations.
    pub source_fallbacks: u64,
    /// Virtual time spent backing off between attempts.
    pub backoff_time: u64,
    /// Re-replication sweeps run after membership changes.
    pub re_replications: u64,
    /// Partition copies created by those sweeps (missing replicas
    /// restored from surviving ones).
    pub replicas_restored: u64,
    /// Partition copies placed at any peer by any path (query caching,
    /// re-replication, anti-entropy repair, leave handover, migration).
    /// With `buckets_lost`/`buckets_recovered` this forms the ledger
    /// `placed == live + lost − recovered` checked by the trace tests.
    pub buckets_placed: u64,
    /// Live partition copies destroyed: abrupt failures and crashes take
    /// down a peer's whole cache; graceful leaves and key migrations count
    /// the drained copies here (and their re-stores in `buckets_placed`).
    pub buckets_lost: u64,
    /// Partition copies rebuilt from a durable log at restart.
    pub buckets_recovered: u64,
    /// Anti-entropy repair rounds run.
    pub repair_rounds: u64,
    /// Partition copies pushed to replica owners by those rounds.
    pub repair_entries_sent: u64,
    /// Queries answered while the network was split and at least one
    /// identifier's global owner was unreachable (mirrors
    /// [`crate::QueryOutcome::partition_degraded`]).
    pub partition_degraded_queries: u64,
    /// Partition copies written anywhere while the network was split —
    /// the divergence that post-heal reconciliation must converge.
    pub partition_writes: u64,
    /// Retries forfeited because the whole-query
    /// [`RetryPolicy::deadline`] was exhausted.
    pub deadline_exhausted: u64,
    /// Backup lookups launched because a primary was outstanding past the
    /// adaptive hedge delay.
    pub hedges_fired: u64,
    /// Hedges whose backup answered before the primary (first response
    /// wins; the loser's cost stays in `hedge_hops`).
    pub hedges_won: u64,
    /// Routing hops spent on backup lookups — the honest price of
    /// hedging, whether or not the backup won.
    pub hedge_hops: u64,
    /// Circuit breakers tripped (closed/half-open → open).
    pub breaker_opens: u64,
    /// Fetches short-circuited straight to a replica because the
    /// primary's breaker was open.
    pub breaker_short_circuits: u64,
    /// Health-probe messages sent by [`crate::ChurnNetwork::probe_peers`]
    /// sweeps (each feeds the failure detector and breakers).
    pub probes_sent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_sane() {
        let p = RetryPolicy::default();
        assert!(p.attempts >= 2, "default must actually retry");
        assert!(p.max_backoff >= p.base_backoff);
        assert!(p.hop_budget > 0);
    }

    #[test]
    fn none_policy_never_retries() {
        let p = RetryPolicy::none();
        assert_eq!(p.attempts, 1);
        let mut rng = DetRng::new(1);
        assert_eq!(p.backoff(1, &mut rng), 0);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            attempts: 6,
            timeout_budget: u64::MAX,
            base_backoff: 100,
            max_backoff: 400,
            hop_budget: 8,
            deadline: None,
        };
        let mut rng = DetRng::new(7);
        let d1 = p.backoff(1, &mut rng);
        let d2 = p.backoff(2, &mut rng);
        let d5 = p.backoff(5, &mut rng);
        assert!((100..200).contains(&d1), "retry 1: base + jitter, got {d1}");
        assert!(
            (200..300).contains(&d2),
            "retry 2: 2·base + jitter, got {d2}"
        );
        assert_eq!(d5, 400, "retry 5: the cap bounds the whole sum");
    }

    #[test]
    fn backoff_never_exceeds_max() {
        // The cap applies to exp + jitter, not the exponential term alone.
        for seed in 0..16 {
            let p = RetryPolicy {
                attempts: 8,
                timeout_budget: u64::MAX,
                base_backoff: 100,
                max_backoff: 400,
                hop_budget: 8,
                deadline: None,
            };
            let mut rng = DetRng::new(seed);
            for retry in 1..40 {
                let d = p.backoff(retry, &mut rng);
                assert!(d <= p.max_backoff, "seed {seed} retry {retry}: {d}");
            }
        }
    }

    #[test]
    fn backoff_clamp_preserves_rng_stream() {
        // The jitter draw happens whether or not the cap swallows it, so
        // a clamped call leaves the stream exactly where the old
        // overshooting code did — later draws are unchanged.
        let p = RetryPolicy {
            attempts: 8,
            timeout_budget: u64::MAX,
            base_backoff: 100,
            max_backoff: 400,
            hop_budget: 8,
            deadline: None,
        };
        let mut a = DetRng::new(13);
        let mut b = DetRng::new(13);
        let _ = p.backoff(10, &mut a); // deep retry: clamped
        let _ = b.gen_range_u64(p.base_backoff); // what the old code drew
        assert_eq!(a.gen_range_u64(1_000_000), b.gen_range_u64(1_000_000));
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let mut a = DetRng::new(5);
        let mut b = DetRng::new(5);
        for retry in 1..6 {
            assert_eq!(p.backoff(retry, &mut a), p.backoff(retry, &mut b));
        }
    }

    #[test]
    fn huge_retry_number_does_not_overflow() {
        let p = RetryPolicy::default();
        let mut rng = DetRng::new(0);
        let d = p.backoff(u32::MAX, &mut rng);
        assert!(d <= p.max_backoff);
    }

    #[test]
    fn stats_default_all_zero() {
        assert_eq!(
            ResilienceStats::default(),
            ResilienceStats {
                lookups_attempted: 0,
                retries: 0,
                lookups_failed: 0,
                source_fallbacks: 0,
                backoff_time: 0,
                re_replications: 0,
                replicas_restored: 0,
                buckets_placed: 0,
                buckets_lost: 0,
                buckets_recovered: 0,
                repair_rounds: 0,
                repair_entries_sent: 0,
                partition_degraded_queries: 0,
                partition_writes: 0,
                deadline_exhausted: 0,
                hedges_fired: 0,
                hedges_won: 0,
                hedge_hops: 0,
                breaker_opens: 0,
                breaker_short_circuits: 0,
                probes_sent: 0,
            }
        );
    }

    #[test]
    fn detector_learns_and_scores_relative_to_history() {
        let mut d = FailureDetector::new();
        assert_eq!(d.suspicion(7, 10_000), 0.0, "unknown peers earn nothing");
        for _ in 0..20 {
            d.observe(7, 100);
        }
        let est = d.estimate(7).unwrap();
        assert!(
            (est.mean - 100.0).abs() < 1.0,
            "mean converged: {}",
            est.mean
        );
        // At-or-below-mean responses are never suspicious.
        assert_eq!(d.suspicion(7, 100), 0.0);
        assert_eq!(d.suspicion(7, 10), 0.0);
        // A 10× spike against a stable history is loudly suspicious.
        assert!(d.suspicion(7, 1_000) > 3.0);
        // A consistently-slow peer is its own baseline: same 1000 from a
        // peer that always answers in 1000 is not suspicious.
        for _ in 0..20 {
            d.observe(8, 1_000);
        }
        assert!(d.suspicion(8, 1_000) < 1.0);
        d.forget(7);
        assert_eq!(d.suspicion(7, 1_000_000), 0.0);
        assert_eq!(d.tracked(), 1);
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown: 1_000,
            suspicion_threshold: 3.0,
        };
        let mut b = CircuitBreaker::new(cfg);
        assert_eq!(b.state(0), BreakerState::Closed);
        assert!(b.allows(0));
        // One failure: still closed (threshold is 2).
        assert_eq!(b.record(false, 10), BreakerTransition::None);
        assert_eq!(b.state(10), BreakerState::Closed);
        // Second consecutive failure: trips.
        assert_eq!(b.record(false, 20), BreakerTransition::Opened);
        assert_eq!(b.state(20), BreakerState::Open);
        assert!(!b.allows(500));
        // Cooldown elapsed: half-open admits exactly the probe.
        assert_eq!(b.state(1_020), BreakerState::HalfOpen);
        assert!(b.allows(1_020));
        // Successful probe closes it and resets the failure streak.
        assert_eq!(b.record(true, 1_020), BreakerTransition::Closed);
        assert_eq!(b.state(1_020), BreakerState::Closed);
        assert_eq!(b.record(false, 1_030), BreakerTransition::None);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown: 1_000,
            suspicion_threshold: 3.0,
        };
        let mut b = CircuitBreaker::new(cfg);
        assert_eq!(b.record(false, 0), BreakerTransition::Opened);
        assert_eq!(b.state(1_000), BreakerState::HalfOpen);
        assert_eq!(b.record(false, 1_000), BreakerTransition::Opened);
        assert_eq!(b.state(1_500), BreakerState::Open, "cooldown restarted");
        assert_eq!(b.state(2_000), BreakerState::HalfOpen);
    }

    #[test]
    fn interleaved_success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig::default()); // threshold 2
        assert_eq!(b.record(false, 0), BreakerTransition::None);
        assert_eq!(b.record(true, 1), BreakerTransition::None);
        assert_eq!(b.record(false, 2), BreakerTransition::None);
        assert_eq!(
            b.state(3),
            BreakerState::Closed,
            "non-consecutive failures never trip"
        );
    }

    #[test]
    fn hedge_delay_clamps_and_tracks_quantile() {
        let policy = HedgePolicy::default();
        // No history: the floor.
        assert_eq!(policy.delay(&ars_telemetry::Hist::default()), 1_000);
        // The floor must clear the worst clean-path latency so clean
        // networks never hedge.
        assert!(policy.min_delay > 64 * HOP_COST + BASE_SERVICE);
        // Healthy history far below the floor: still the floor.
        let mut fast = ars_telemetry::Hist::default();
        for _ in 0..100 {
            fast.record(150);
        }
        assert_eq!(policy.delay(&fast), 1_000);
        // A stretched tail pulls the delay up with the q90…
        let mut slow = ars_telemetry::Hist::default();
        for _ in 0..100 {
            slow.record(1_000);
        }
        let d = policy.delay(&slow);
        assert!((1_000..=2_048).contains(&d), "2 × q90 ≈ 2000, got {d}");
        // …but the ceiling bounds catastrophe.
        let mut awful = ars_telemetry::Hist::default();
        awful.record(1_000_000);
        assert_eq!(policy.delay(&awful), 5_000);
    }

    #[test]
    fn default_policy_has_no_deadline() {
        // The deadline budget is strictly opt-in: the default policy must
        // behave bit-for-bit like revisions that predate the field.
        assert_eq!(RetryPolicy::default().deadline, None);
        assert_eq!(RetryPolicy::none().deadline, None);
        assert_eq!(
            RetryPolicy::default().with_deadline(500).deadline,
            Some(500)
        );
    }
}
