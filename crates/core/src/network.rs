//! The paper's system, end to end: hash → route → match → cache.
//!
//! [`RangeSelectNetwork`] wires the pieces together exactly as §4
//! describes. It is a *direct-call* simulation: Chord routing is computed
//! (with full hop accounting) but replies do not traverse a message queue
//! — see [`crate::proto`] for the message-passing rendition, which an
//! integration test holds equal to this one.

use crate::bucket::Match;
use crate::config::{Placement, PlacementMode, SystemConfig};
use crate::peer::Peer;
use ars_chord::{arc_base, layered_position, Id, Ring};
use ars_common::{DetRng, FxHashMap};
use ars_lsh::{HashGroups, RangeSet};
use ars_telemetry::Telemetry;

/// The result of one range query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The original (unpadded) query range.
    pub query: RangeSet,
    /// The best-matching cached partition across the `l` replies, if any
    /// contacted bucket was non-empty.
    pub best_match: Option<RangeSet>,
    /// Jaccard similarity of `query` and the match (0 when none) — the
    /// x-axis of Figs. 6–7.
    pub similarity: f64,
    /// Recall `|Q∩R| / |Q|` of the match for the original query (0 when
    /// none) — the x-axis of Figs. 8–10.
    pub recall: f64,
    /// True if the match equals the (padded) hashed range exactly.
    pub exact: bool,
    /// True if this query's partition was newly cached at the identifier
    /// owners.
    pub stored: bool,
    /// Overlay hops of each routed lookup: one entry per *distinct*
    /// identifier under independent placement (duplicate identifiers
    /// within a query are deduplicated before routing), a single entry —
    /// the one arc lookup — under layered placement.
    pub hops: Vec<usize>,
    /// The `l` identifiers (diagnostics; shared identifiers across similar
    /// queries are the whole mechanism).
    pub identifiers: Vec<u32>,
    /// Number of distinct peers contacted.
    pub peers_contacted: usize,
    /// Total lookup attempts spent on this query, retries included. Equals
    /// the number of *distinct* identifiers on a healthy network under
    /// independent placement (duplicates are deduplicated before routing),
    /// `1` under layered placement (the single arc lookup); larger when
    /// the resilient query path
    /// ([`crate::ChurnNetwork::query_resilient`]) had to route around
    /// failures.
    pub attempts: usize,
    /// True if no identifier owner could be reached at all and the query
    /// degraded to fetching directly from the source relations — the
    /// paper's soft-state escape hatch, surfaced instead of an error.
    pub fell_back_to_source: bool,
    /// True if the query ran while the network was partitioned and at
    /// least one identifier's *global* owner was unreachable from the
    /// origin's island — the answer came from island-local replicas (or
    /// the source), so it may be stale until the partition heals and
    /// reconciliation runs. Only the partition-aware resilient path
    /// ([`crate::ChurnNetwork::query_resilient`]) sets this; every other
    /// query path reports `false`.
    pub partition_degraded: bool,
}

/// Wall-clock seconds each stage of a [`RangeSelectNetwork::query_batch`]
/// call spent — the instrumentation that makes the commit bottleneck
/// visible in `BENCH_throughput.json` (ISSUE 6 satellite): hashing and
/// routing parallelize, the commit stage is the sequential residue the
/// concurrent engine ([`crate::engine`]) exists to break up.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchTimings {
    /// Phase 1: identifier hashing (parallel) + cache-accounting replay.
    pub hash_secs: f64,
    /// Phase 2: origin pre-draw + parallel routing of distinct jobs.
    pub route_secs: f64,
    /// Phase 3: sequential commit in trace order.
    pub commit_secs: f64,
}

/// Memoized identifier computation, keyed by the (padded) hashed range.
///
/// Group identifiers depend only on the hash groups, which are fixed at
/// network construction, so entries never *invalidate*. Workload traces
/// repeat ranges heavily (Zipf-style popularity), making this the dominant
/// saving of the batched query path; the hit/miss counters quantify it.
///
/// The cache may be *bounded* ([`SystemConfig::ident_cache_capacity`]),
/// in which case entries are evicted in FIFO insertion order. FIFO — not
/// LRU — is deliberate: hits never perturb the eviction order, so the
/// batched query path can account an entire trace's hits, misses, and
/// evictions up front and still land on exactly the cache state the
/// sequential path would (asserted in tests).
#[derive(Debug, Clone, Default)]
pub struct IdentifierCache {
    pub(crate) map: FxHashMap<RangeSet, Vec<u32>>,
    fifo: std::collections::VecDeque<RangeSet>,
    /// `0` = unbounded.
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl IdentifierCache {
    /// Cache lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache lookups that had to compute identifiers.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to respect the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct ranges cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// An empty cache with the given capacity (`0` = unbounded).
    pub(crate) fn with_capacity(capacity: usize) -> IdentifierCache {
        IdentifierCache {
            capacity,
            ..IdentifierCache::default()
        }
    }

    /// Insert a freshly computed entry, evicting FIFO when over capacity.
    /// Returns the number of evictions performed (0 or 1).
    pub(crate) fn insert(&mut self, range: RangeSet, ids: Vec<u32>) -> u64 {
        if self.map.insert(range.clone(), ids).is_none() {
            self.fifo.push_back(range);
        }
        let mut evicted = 0;
        while self.capacity > 0 && self.map.len() > self.capacity {
            let oldest = self
                .fifo
                .pop_front()
                .expect("fifo tracks every cached range");
            self.map.remove(&oldest);
            self.evictions += 1;
            evicted += 1;
        }
        evicted
    }

    /// Look up with hit accounting; `None` leaves the miss for the caller
    /// to record once the identifiers are computed.
    pub(crate) fn get_hit(&mut self, range: &RangeSet) -> Option<Vec<u32>> {
        let ids = self.map.get(range)?;
        self.hits += 1;
        Some(ids.clone())
    }

    /// Record a miss (the caller computed identifiers itself).
    pub(crate) fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Partition the cached entries into `n` segments by `seg_of`,
    /// preserving FIFO order within each segment. Entries move out of
    /// `self`; the hit/miss/eviction counters stay behind (segments start
    /// at zero so their counts read as deltas to fold back via
    /// [`Self::absorb`]). Each segment gets capacity `ceil(capacity / n)`
    /// — so a single segment keeps the exact original bound, and `n`
    /// segments jointly bound the entry count by at most `n - 1` over the
    /// original (re-trimmed on absorb).
    pub(crate) fn split_segments(
        &mut self,
        n: usize,
        seg_of: impl Fn(&RangeSet) -> usize,
    ) -> Vec<IdentifierCache> {
        let per_seg = if self.capacity == 0 {
            0
        } else {
            self.capacity.div_ceil(n).max(1)
        };
        let mut segments: Vec<IdentifierCache> = (0..n)
            .map(|_| IdentifierCache::with_capacity(per_seg))
            .collect();
        for range in self.fifo.drain(..) {
            if let Some(ids) = self.map.remove(&range) {
                let seg = &mut segments[seg_of(&range)];
                seg.fifo.push_back(range.clone());
                seg.map.insert(range, ids);
            }
        }
        segments
    }

    /// Fold a segment produced by [`Self::split_segments`] back in:
    /// entries re-append in the segment's FIFO order, counters add, and
    /// the merged cache re-trims to its own capacity (counting those
    /// trims as evictions).
    pub(crate) fn absorb(&mut self, mut segment: IdentifierCache) {
        self.hits += segment.hits;
        self.misses += segment.misses;
        self.evictions += segment.evictions;
        while let Some(range) = segment.fifo.pop_front() {
            if let Some(ids) = segment.map.remove(&range) {
                if self.map.insert(range.clone(), ids).is_none() {
                    self.fifo.push_back(range);
                }
            }
        }
        while self.capacity > 0 && self.map.len() > self.capacity {
            let oldest = self
                .fifo
                .pop_front()
                .expect("fifo tracks every cached range");
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }
}

/// Which identifier kernels the batch hashing phase uses. Both produce
/// identical values (pinned by tests in `ars_lsh`); the fused kernels are
/// what `query_batch` runs, the per-function loop is kept so
/// [`RangeSelectNetwork::query_batch_legacy`] reproduces the pre-sharding
/// engine for benchmarking.
#[derive(Debug, Clone, Copy)]
enum BatchKernels {
    Fused,
    PerFunction,
}

/// Aggregate statistics over a network's lifetime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkStats {
    /// Queries executed.
    pub queries: u64,
    /// Queries that found some match.
    pub matched: u64,
    /// Queries whose match was exact.
    pub exact: u64,
    /// Queries that stored their partition.
    pub stored: u64,
    /// Total identifier lookups routed.
    pub lookups: u64,
    /// Total overlay hops across all lookups.
    pub total_hops: u64,
    /// Lookups *not* routed because the identifier repeated within a
    /// single query (two groups hashing a range to the same bucket) —
    /// each one a saved message.
    pub dedup_saved_lookups: u64,
    /// Successor-walk steps taken by layered-placement queries (one
    /// overlay message each; always zero under independent placement).
    pub walk_steps: u64,
    /// Multi-probe candidate buckets checked at already-visited peers
    /// (local work, not messages; always zero under independent
    /// placement).
    pub probe_checks: u64,
}

impl NetworkStats {
    /// Add another accumulator's counts into this one. Every field is a
    /// sum, so merging per-shard accumulators in any order yields the
    /// totals a single global accumulator would have collected — the
    /// conserved-ledger property the concurrent engine relies on.
    pub fn merge(&mut self, other: &NetworkStats) {
        self.queries += other.queries;
        self.matched += other.matched;
        self.exact += other.exact;
        self.stored += other.stored;
        self.lookups += other.lookups;
        self.total_hops += other.total_hops;
        self.dedup_saved_lookups += other.dedup_saved_lookups;
        self.walk_steps += other.walk_steps;
        self.probe_checks += other.probe_checks;
    }
}

/// Mutable access to peers by ring position — the seam that lets the
/// commit procedure ([`commit_routed`]) run against either the network's
/// global peer map or the concurrent engine's locked shard views.
pub(crate) trait PeerAccess {
    /// The peer at `id`, if present.
    fn peer(&self, id: u32) -> Option<&Peer>;
    /// Mutable access to the peer at `id`, if present.
    fn peer_mut(&mut self, id: u32) -> Option<&mut Peer>;
}

impl PeerAccess for FxHashMap<u32, Peer> {
    fn peer(&self, id: u32) -> Option<&Peer> {
        self.get(&id)
    }
    fn peer_mut(&mut self, id: u32) -> Option<&mut Peer> {
        self.get_mut(&id)
    }
}

/// Where the commit procedure records its counters — the global
/// [`NetworkStats`] on the sequential path, per-shard accumulators in the
/// concurrent engine. Every update is an addition, so any sink placement
/// that eventually sums preserves the ledgers.
pub(crate) trait StatsSink {
    /// One identifier lookup routed in `hops` overlay hops to `owner`.
    fn on_lookup(&mut self, owner: Id, hops: usize);
    /// One lookup skipped because its identifier repeated within the
    /// query.
    fn on_dedup_saved(&mut self);
    /// `steps` successor-walk messages spent by a layered query.
    fn on_walk(&mut self, steps: usize);
    /// `count` multi-probe candidate buckets checked locally.
    fn on_probes(&mut self, count: usize);
    /// One query finished.
    fn on_query(&mut self, matched: bool, exact: bool, stored: bool);
}

impl StatsSink for NetworkStats {
    fn on_lookup(&mut self, _owner: Id, hops: usize) {
        self.lookups += 1;
        self.total_hops += hops as u64;
    }
    fn on_dedup_saved(&mut self) {
        self.dedup_saved_lookups += 1;
    }
    fn on_walk(&mut self, steps: usize) {
        self.walk_steps += steps as u64;
    }
    fn on_probes(&mut self, count: usize) {
        self.probe_checks += count as u64;
    }
    fn on_query(&mut self, matched: bool, exact: bool, stored: bool) {
        self.queries += 1;
        if matched {
            self.matched += 1;
        }
        if exact {
            self.exact += 1;
        }
        if stored {
            self.stored += 1;
        }
    }
}

/// Ring position of a partition identifier under `config`'s placement
/// policy. Pure; shared by the network and the concurrent engine.
pub(crate) fn place_identifier(config: &SystemConfig, identifier: u32) -> Id {
    match config.placement {
        Placement::Uniformized => Id(ars_chord::sha1::sha1_u32(&identifier.to_be_bytes())),
        Placement::Direct => Id(identifier),
    }
}

/// The commit half of a query — matching, caching, stats, telemetry —
/// against any [`PeerAccess`]/[`StatsSink`] pair. Extracted from the
/// sequential path verbatim so the engine's sharded commits replay the
/// exact same per-owner update order; [`RangeSelectNetwork`]'s own
/// `finish_query_routed` delegates here, keeping the two paths one body
/// of code.
///
/// `emit_span` gates the per-query `core.query` span: the sequential path
/// emits it (trace tests pin the event order), the concurrent engine does
/// not (span begin/end interleaving across workers would make event logs
/// schedule-dependent; counters and histograms are order-free).
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit_routed<P: PeerAccess, S: StatsSink>(
    config: &SystemConfig,
    telemetry: &Telemetry,
    peers: &mut P,
    stats: &mut S,
    q: &RangeSet,
    hashed_range: RangeSet,
    identifiers: Vec<u32>,
    routes: Vec<(Id, usize)>,
    emit_span: bool,
) -> QueryOutcome {
    debug_assert_eq!(routes.len(), identifiers.len());
    let span = if emit_span {
        Some(telemetry.span("core.query", &[("l", identifiers.len().into())]))
    } else {
        None
    };

    // Collect each owner's best bucket match. An owner without storage
    // state (impossible on a static ring, but reachable through
    // subclass-style reuse under churn) is skipped rather than
    // panicking; the outcome records whether *any* owner was reachable.
    let mut hops = Vec::with_capacity(identifiers.len());
    let mut owners = Vec::with_capacity(identifiers.len());
    let mut routed_idents: Vec<u32> = Vec::with_capacity(identifiers.len());
    let mut reached = 0usize;
    let mut best: Option<Match> = None;
    for (&ident, &(owner, h)) in identifiers.iter().zip(&routes) {
        owners.push(owner);
        if routed_idents.contains(&ident) {
            // Two groups hashed the range to the same bucket: that bucket
            // was already routed and matched this query, so a second
            // lookup would be a pure waste — skip it and count the save.
            stats.on_dedup_saved();
            telemetry.counter_add("core.dedup.saved_lookups", 1);
            continue;
        }
        routed_idents.push(ident);
        hops.push(h);
        stats.on_lookup(owner, h);
        telemetry.record("core.lookup.hops", h as u64);
        let Some(peer) = peers.peer(owner.0) else {
            continue;
        };
        reached += 1;
        let scan_len = if config.use_local_index {
            peer.partition_count()
        } else {
            peer.bucket(ident).map(|b| b.len()).unwrap_or(0)
        };
        telemetry.record("core.bucket.scan_len", scan_len as u64);
        let candidate = if config.use_local_index {
            peer.best_across_buckets(&hashed_range, config.matching)
        } else {
            peer.best_in_bucket(ident, &hashed_range, config.matching)
        };
        if let Some(m) = candidate {
            let better = match &best {
                None => true,
                Some(b) => m.score > b.score,
            };
            if better {
                best = Some(m);
            }
        }
    }

    let exact = best
        .as_ref()
        .map(|m| m.range == hashed_range)
        .unwrap_or(false);

    // Cache on miss: store the (padded) partition at all l owners.
    let mut stored = false;
    if config.cache_on_miss && !exact {
        for (&ident, owner) in identifiers.iter().zip(&owners) {
            if let Some(peer) = peers.peer_mut(owner.0) {
                stored |= peer.store(ident, hashed_range.clone());
            }
        }
    }

    // Score the match against the *original* query: similarity for
    // Figs. 6–7, recall for Figs. 8–10.
    let (similarity, recall, best_match) = match &best {
        Some(m) => (
            q.jaccard(&m.range),
            q.containment_in(&m.range),
            Some(m.range.clone()),
        ),
        None => (0.0, 0.0, None),
    };

    let mut distinct = owners.clone();
    distinct.sort_unstable();
    distinct.dedup();

    stats.on_query(best_match.is_some(), exact, stored);

    telemetry.counter_add("core.queries", 1);
    if best_match.is_some() {
        // ×1000 fixed point: histograms store u64.
        telemetry.record("core.query.jaccard", (similarity * 1000.0) as u64);
        telemetry.record("core.query.recall", (recall * 1000.0) as u64);
    }
    if let Some(span) = span {
        telemetry.span_end(
            span,
            &[
                ("matched", best_match.is_some().into()),
                ("exact", exact.into()),
                ("stored", stored.into()),
                ("similarity", similarity.into()),
                ("recall", recall.into()),
                ("fallback", (reached == 0).into()),
            ],
        );
    }

    let attempts = routed_idents.len();
    QueryOutcome {
        query: q.clone(),
        best_match,
        similarity,
        recall,
        exact,
        stored,
        hops,
        identifiers,
        peers_contacted: distinct.len(),
        attempts,
        fell_back_to_source: reached == 0,
        partition_degraded: false,
    }
}

/// Generate the anchor-sketch hash group for a config: one group of
/// `config.layers` min-hashes, from an RNG salted off the system seed.
/// The salt keeps the anchor draw out of the sequences the groups and
/// query path consume — constructing a network with layered placement
/// available must not move a single bit of the default paths.
pub(crate) fn anchor_groups(config: &SystemConfig) -> HashGroups {
    const ANCHOR_SALT: u64 = 0x6172_735F_6172_6373; // "ars_arcs"
    let mut rng = DetRng::new(config.seed ^ ANCHOR_SALT);
    HashGroups::generate(config.family, config.layers, 1, &mut rng)
}

/// The anchor sketch of a hashed range: the single coarse identifier
/// (`SystemConfig::layers` min-hashes XOR-folded) that keys the arc all
/// of the query's buckets live in under layered placement. Similar
/// ranges share it with probability ≈ `J^layers`.
pub(crate) fn layered_anchor(anchors: &HashGroups, hashed_range: &RangeSet) -> u32 {
    anchors.identifiers(hashed_range)[0]
}

/// A fully-resolved layered query: the one arc lookup, the peers the
/// bounded successor walk visits, and every candidate bucket to check at
/// them. Pure data — planning (reads the immutable ring) is separated
/// from committing (mutates peers/stats) so the batch and engine paths
/// can plan in parallel and commit in order, exactly like
/// [`commit_routed`]'s routes.
#[derive(Debug, Clone)]
pub(crate) struct LayeredPlan {
    /// `(first arc owner, hops)` of the single `arc_base` lookup.
    pub(crate) route: (Id, usize),
    /// Peers the walk visits: the first owner plus at most
    /// `walk_window − 1` successors (one overlay message per step).
    pub(crate) visited: Vec<Id>,
    /// Candidate bucket identifiers checked at every visited peer: the
    /// distinct base identifiers first, then ranked multi-probe
    /// candidates.
    pub(crate) candidates: Vec<u32>,
    /// How many of `candidates` are base identifiers (the prefix).
    pub(crate) base_count: usize,
    /// Cache-on-miss targets: each distinct base identifier and the true
    /// owner of its layered position.
    pub(crate) store_targets: Vec<(u32, Id)>,
}

/// Plan a layered query end to end: anchor → one arc lookup → walk and
/// candidate sets. Pure (the ring is immutable).
pub(crate) fn plan_layered(
    config: &SystemConfig,
    groups: &HashGroups,
    anchors: &HashGroups,
    ring: &Ring,
    origin: Id,
    hashed_range: &RangeSet,
    identifiers: &[u32],
) -> LayeredPlan {
    let anchor = layered_anchor(anchors, hashed_range);
    let route = ring.lookup(origin, arc_base(anchor));
    plan_layered_routed(
        config,
        groups,
        ring,
        route,
        anchor,
        hashed_range,
        identifiers,
    )
}

/// The post-routing half of layered planning — the batch path resolves
/// the arc lookup in its parallel routing phase and feeds it in here.
pub(crate) fn plan_layered_routed(
    config: &SystemConfig,
    groups: &HashGroups,
    ring: &Ring,
    route: (Id, usize),
    anchor: u32,
    hashed_range: &RangeSet,
    identifiers: &[u32],
) -> LayeredPlan {
    let visited = ring.successors_window(route.0, config.walk_window);
    let mut candidates: Vec<u32> = Vec::with_capacity(identifiers.len() + config.probes);
    for &ident in identifiers {
        if !candidates.contains(&ident) {
            candidates.push(ident);
        }
    }
    let base_count = candidates.len();
    if config.probes > 0 {
        for c in groups.probe_candidates(hashed_range, config.probes) {
            if !candidates.contains(&c.identifier) {
                candidates.push(c.identifier);
            }
        }
    }
    let store_targets = candidates[..base_count]
        .iter()
        .map(|&ident| (ident, ring.successor_of(layered_position(anchor, ident))))
        .collect();
    LayeredPlan {
        route,
        visited,
        candidates,
        base_count,
        store_targets,
    }
}

/// The commit half of a layered query — the [`commit_routed`] analogue:
/// one lookup's hops, a successor walk, candidate matching at every
/// visited peer, cache-on-miss at the layered owners. Same
/// [`PeerAccess`]/[`StatsSink`] seam, so the sequential, batched, and
/// concurrent-engine paths share this one body of code.
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit_layered<P: PeerAccess, S: StatsSink>(
    config: &SystemConfig,
    telemetry: &Telemetry,
    peers: &mut P,
    stats: &mut S,
    q: &RangeSet,
    hashed_range: RangeSet,
    identifiers: Vec<u32>,
    plan: LayeredPlan,
    emit_span: bool,
) -> QueryOutcome {
    let span = if emit_span {
        Some(telemetry.span("core.query", &[("l", identifiers.len().into())]))
    } else {
        None
    };

    let (first_owner, h) = plan.route;
    stats.on_lookup(first_owner, h);
    telemetry.record("core.lookup.hops", h as u64);
    let walk_steps = plan.visited.len().saturating_sub(1);
    if walk_steps > 0 {
        stats.on_walk(walk_steps);
        telemetry.counter_add("core.walk.steps", walk_steps as u64);
    }
    let probe_checks = plan.candidates.len() - plan.base_count;
    if probe_checks > 0 {
        stats.on_probes(probe_checks);
        telemetry.counter_add("core.probe.checks", probe_checks as u64);
    }

    let mut reached = 0usize;
    let mut best: Option<Match> = None;
    for &peer_id in &plan.visited {
        let Some(peer) = peers.peer(peer_id.0) else {
            continue;
        };
        reached += 1;
        let scan_len = if config.use_local_index {
            peer.partition_count()
        } else {
            plan.candidates
                .iter()
                .map(|&c| peer.bucket(c).map(|b| b.len()).unwrap_or(0))
                .sum()
        };
        telemetry.record("core.bucket.scan_len", scan_len as u64);
        let mut consider = |m: Match| {
            let better = match &best {
                None => true,
                Some(b) => m.score > b.score,
            };
            if better {
                best = Some(m);
            }
        };
        if config.use_local_index {
            if let Some(m) = peer.best_across_buckets(&hashed_range, config.matching) {
                consider(m);
            }
        } else {
            for &ident in &plan.candidates {
                if let Some(m) = peer.best_in_bucket(ident, &hashed_range, config.matching) {
                    consider(m);
                }
            }
        }
    }

    let exact = best
        .as_ref()
        .map(|m| m.range == hashed_range)
        .unwrap_or(false);

    // Cache on miss: store the (padded) partition at the layered owners
    // of the base identifiers, so later similar queries find it inside
    // the same arc.
    let mut stored = false;
    if config.cache_on_miss && !exact {
        for &(ident, owner) in &plan.store_targets {
            if let Some(peer) = peers.peer_mut(owner.0) {
                stored |= peer.store(ident, hashed_range.clone());
            }
        }
    }

    let (similarity, recall, best_match) = match &best {
        Some(m) => (
            q.jaccard(&m.range),
            q.containment_in(&m.range),
            Some(m.range.clone()),
        ),
        None => (0.0, 0.0, None),
    };

    stats.on_query(best_match.is_some(), exact, stored);

    telemetry.counter_add("core.queries", 1);
    if best_match.is_some() {
        telemetry.record("core.query.jaccard", (similarity * 1000.0) as u64);
        telemetry.record("core.query.recall", (recall * 1000.0) as u64);
    }
    if let Some(span) = span {
        telemetry.span_end(
            span,
            &[
                ("matched", best_match.is_some().into()),
                ("exact", exact.into()),
                ("stored", stored.into()),
                ("similarity", similarity.into()),
                ("recall", recall.into()),
                ("fallback", (reached == 0).into()),
            ],
        );
    }

    QueryOutcome {
        query: q.clone(),
        best_match,
        similarity,
        recall,
        exact,
        stored,
        hops: vec![h],
        identifiers,
        peers_contacted: plan.visited.len(),
        attempts: 1,
        fell_back_to_source: reached == 0,
        partition_degraded: false,
    }
}

/// The full simulated system.
#[derive(Debug, Clone)]
pub struct RangeSelectNetwork {
    pub(crate) config: SystemConfig,
    pub(crate) ring: Ring,
    pub(crate) peers: FxHashMap<u32, Peer>,
    pub(crate) groups: HashGroups,
    /// The anchor-sketch hash group (one group of `layers` min-hashes)
    /// layered placement keys arcs with. Drawn from a *salted* RNG, fully
    /// decoupled from `rng`/`groups`, so the default independent paths
    /// consume exactly the pre-layered random sequences (pinned by the
    /// placement goldens).
    pub(crate) anchors: HashGroups,
    pub(crate) rng: DetRng,
    pub(crate) stats: NetworkStats,
    pub(crate) ident_cache: IdentifierCache,
    pub(crate) telemetry: Telemetry,
}

impl RangeSelectNetwork {
    /// Build a network of `n_peers` (ids seeded from the config seed) with
    /// freshly drawn hash groups. The system starts with no cached
    /// partitions, as in §5.
    pub fn new(n_peers: usize, config: SystemConfig) -> RangeSelectNetwork {
        let mut rng = DetRng::new(config.seed);
        let mut group_rng = rng.fork();
        let ring_seed = rng.next_u64();
        let ring = Ring::from_seed(n_peers, ring_seed);
        Self::with_ring(ring, config, &mut group_rng, rng)
    }

    /// Build over peers identified by addresses (SHA-1 placement, §4).
    pub fn from_addresses<S: AsRef<str>, I: IntoIterator<Item = S>>(
        addrs: I,
        config: SystemConfig,
    ) -> RangeSelectNetwork {
        let mut rng = DetRng::new(config.seed);
        let mut group_rng = rng.fork();
        let ring = Ring::from_addresses(addrs);
        Self::with_ring(ring, config, &mut group_rng, rng)
    }

    fn with_ring(
        ring: Ring,
        config: SystemConfig,
        group_rng: &mut DetRng,
        rng: DetRng,
    ) -> RangeSelectNetwork {
        let groups = HashGroups::generate(config.family, config.k, config.l, group_rng);
        let anchors = anchor_groups(&config);
        let peers = ring
            .node_ids()
            .iter()
            .map(|&id| (id.0, Peer::new(id)))
            .collect();
        let ident_cache = IdentifierCache {
            capacity: config.ident_cache_capacity,
            ..IdentifierCache::default()
        };
        RangeSelectNetwork {
            config,
            ring,
            peers,
            groups,
            anchors,
            rng,
            stats: NetworkStats::default(),
            ident_cache,
            telemetry: Telemetry::noop(),
        }
    }

    /// Assemble a network from pre-existing parts — used by
    /// [`crate::ChurnNetwork::freeze`] to wrap a ring snapshot and cloned
    /// storage into a static network that the concurrent engine can run.
    /// Stats and the identifier cache start empty; telemetry starts as a
    /// no-op (install one with [`Self::set_telemetry`]).
    pub(crate) fn from_parts(
        config: SystemConfig,
        ring: Ring,
        peers: FxHashMap<u32, Peer>,
        groups: HashGroups,
        rng: DetRng,
    ) -> RangeSelectNetwork {
        let ident_cache = IdentifierCache::with_capacity(config.ident_cache_capacity);
        let anchors = anchor_groups(&config);
        RangeSelectNetwork {
            config,
            ring,
            peers,
            groups,
            anchors,
            rng,
            stats: NetworkStats::default(),
            ident_cache,
            telemetry: Telemetry::noop(),
        }
    }

    /// A minimal throwaway network — the engine swaps one in while it
    /// temporarily owns the real network's state (see
    /// [`crate::engine::QueryEngine`]). Cheap to build: one peer, one
    /// hash function.
    pub(crate) fn placeholder() -> RangeSelectNetwork {
        RangeSelectNetwork::new(1, SystemConfig::default().with_kl(1, 1))
    }

    /// Install a telemetry sink. Queries emit `core.*` counters
    /// (`core.queries`, `core.ident_cache.hits`/`.misses`), histograms
    /// (`core.lookup.hops`, `core.bucket.scan_len`, `core.query.jaccard`,
    /// `core.query.recall` — the latter two ×1000 fixed point), and one
    /// `core.query` event per query.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The installed telemetry handle (no-op by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if the network has no peers (cannot be constructed).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The underlying Chord ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The hash groups (shared by all peers — the global schema of §2
    /// includes the hash functions).
    pub fn groups(&self) -> &HashGroups {
        &self.groups
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Ring position of a partition identifier under the configured
    /// placement policy.
    pub fn place(&self, identifier: u32) -> Id {
        place_identifier(&self.config, identifier)
    }

    /// A peer's storage state.
    pub fn peer(&self, id: Id) -> Option<&Peer> {
        self.peers.get(&id.0)
    }

    /// Partition counts per peer, ring order (Fig. 11's metric).
    pub fn load_distribution(&self) -> Vec<usize> {
        self.ring
            .node_ids()
            .iter()
            .map(|id| self.peers[&id.0].partition_count())
            .collect()
    }

    /// Total partitions stored across all peers.
    pub fn total_partitions(&self) -> usize {
        self.peers.values().map(Peer::partition_count).sum()
    }

    /// Execute one range query through the full §4 procedure.
    pub fn query(&mut self, q: &RangeSet) -> QueryOutcome {
        let padding = self.config.padding;
        self.query_padded(q, padding)
    }

    /// Like [`Self::query`] but with an explicit padding fraction for this
    /// query, overriding the configured one — the hook the adaptive
    /// padding policy (paper §6 future work; [`crate::adaptive`]) uses.
    pub fn query_padded(&mut self, q: &RangeSet, padding: f64) -> QueryOutcome {
        assert!(!q.is_empty(), "cannot query an empty range");
        assert!(padding >= 0.0, "padding must be non-negative");
        let hashed_range = Self::hashed_range(q, padding);
        let identifiers = self.cached_identifiers(&hashed_range);
        self.finish_query(q, hashed_range, identifiers)
    }

    /// §5.2 padding: expand the query before hashing/matching/caching.
    fn hashed_range(q: &RangeSet, padding: f64) -> RangeSet {
        if padding > 0.0 {
            q.pad(padding)
        } else {
            q.clone()
        }
    }

    /// Group identifiers for a hashed range, memoized in the
    /// [`IdentifierCache`].
    fn cached_identifiers(&mut self, hashed_range: &RangeSet) -> Vec<u32> {
        if let Some(ids) = self.ident_cache.map.get(hashed_range) {
            self.ident_cache.hits += 1;
            self.telemetry.counter_add("core.ident_cache.hits", 1);
            return ids.clone();
        }
        self.ident_cache.misses += 1;
        self.telemetry.counter_add("core.ident_cache.misses", 1);
        let ids = self.groups.identifiers(hashed_range);
        self.ident_cache_insert(hashed_range.clone(), ids.clone());
        ids
    }

    /// Insert into the identifier cache, exporting eviction/size telemetry.
    fn ident_cache_insert(&mut self, range: RangeSet, ids: Vec<u32>) {
        let evicted = self.ident_cache.insert(range, ids);
        if evicted > 0 {
            self.telemetry
                .counter_add("core.ident_cache.evictions", evicted);
        }
        self.telemetry
            .gauge_set("core.ident_cache.size", self.ident_cache.len() as u64);
    }

    /// Everything after identifier computation: routing, matching, caching,
    /// stats. Split out so the batched path can feed precomputed
    /// identifiers while preserving the exact per-query RNG draw order.
    fn finish_query(
        &mut self,
        q: &RangeSet,
        hashed_range: RangeSet,
        identifiers: Vec<u32>,
    ) -> QueryOutcome {
        // Pick a random origin peer for routing (hop accounting) — the one
        // RNG draw a query makes, which the batched path pre-draws in
        // trace order before routing in parallel.
        let origin = {
            let ids = self.ring.node_ids();
            ids[self.rng.gen_index(ids.len())]
        };
        match self.config.placement_mode {
            PlacementMode::Independent => {
                // Route each *distinct* identifier once; duplicates reuse
                // the resolved route (commit skips their lookup too).
                let mut memo: FxHashMap<u32, (Id, usize)> = FxHashMap::default();
                let routes: Vec<(Id, usize)> = identifiers
                    .iter()
                    .map(|&ident| {
                        *memo.entry(ident).or_insert_with(|| {
                            self.ring
                                .lookup(origin, place_identifier(&self.config, ident))
                        })
                    })
                    .collect();
                self.finish_query_routed(q, hashed_range, identifiers, routes)
            }
            PlacementMode::Layered => {
                let plan = plan_layered(
                    &self.config,
                    &self.groups,
                    &self.anchors,
                    &self.ring,
                    origin,
                    &hashed_range,
                    &identifiers,
                );
                commit_layered(
                    &self.config,
                    &self.telemetry,
                    &mut self.peers,
                    &mut self.stats,
                    q,
                    hashed_range,
                    identifiers,
                    plan,
                    true,
                )
            }
        }
    }

    /// The commit half of a query: matching, caching, stats — with routing
    /// already resolved. Routing over the static [`Ring`] is pure, so the
    /// batched path resolves it in a parallel read-only phase against the
    /// ring snapshot and replays commits here sequentially in trace order;
    /// outcomes are bit-identical to [`Self::finish_query`] (asserted in
    /// tests).
    fn finish_query_routed(
        &mut self,
        q: &RangeSet,
        hashed_range: RangeSet,
        identifiers: Vec<u32>,
        routes: Vec<(Id, usize)>,
    ) -> QueryOutcome {
        commit_routed(
            &self.config,
            &self.telemetry,
            &mut self.peers,
            &mut self.stats,
            q,
            hashed_range,
            identifiers,
            routes,
            true,
        )
    }

    /// Run a whole trace, returning per-query outcomes.
    pub fn run_trace<'a, I: IntoIterator<Item = &'a RangeSet>>(
        &mut self,
        queries: I,
    ) -> Vec<QueryOutcome> {
        queries.into_iter().map(|q| self.query(q)).collect()
    }

    /// Identifier-cache statistics (hits, misses, distinct entries).
    pub fn identifier_cache(&self) -> &IdentifierCache {
        &self.ident_cache
    }

    /// Execute a slice of queries through the sharded batch engine.
    ///
    /// Three phases:
    ///
    /// 1. **Parallel hashing** — identifier computation (`k·l` min-hashes
    ///    per distinct range, via the fused group kernels) is memoized per
    ///    distinct hashed range and fanned across worker threads; cache
    ///    accounting (hits, misses, FIFO evictions) is then replayed
    ///    sequentially in trace order so it lands on the exact state the
    ///    one-at-a-time path produces.
    /// 2. **Parallel routing** — origin peers are pre-drawn sequentially
    ///    (one RNG call per query, trace order), then every distinct
    ///    `(origin, identifier)` pair is routed once against the immutable
    ///    ring snapshot across worker threads. Routing over a static
    ///    [`Ring`] is pure, so parallelism cannot perturb results.
    /// 3. **Sequential commit** — matching, caching, stats, and telemetry
    ///    replay in trace order via the routed commit path.
    ///
    /// Outcomes, statistics, and cache contents are bit-identical to
    /// calling [`Self::query`] in a loop (asserted in tests).
    pub fn query_batch(&mut self, queries: &[RangeSet]) -> Vec<QueryOutcome> {
        self.query_batch_timed(queries).0
    }

    /// [`Self::query_batch`] with per-stage wall-clock timings — the
    /// throughput bench uses this to report where a batch's time goes
    /// (hash / route / commit) instead of a single opaque number.
    pub fn query_batch_timed(&mut self, queries: &[RangeSet]) -> (Vec<QueryOutcome>, BatchTimings) {
        let t0 = std::time::Instant::now();
        let (hashed, ids_per_query) = self.batch_resolve_identifiers(queries);
        let t1 = std::time::Instant::now();

        // Phase 2a: pre-draw origins — the only RNG use on the query path,
        // consumed in trace order exactly as the sequential path would.
        let node_ids = self.ring.node_ids();
        let origins: Vec<Id> = queries
            .iter()
            .map(|_| node_ids[self.rng.gen_index(node_ids.len())])
            .collect();

        // Phase 2b: resolve every distinct routing job once, in parallel,
        // against the immutable ring — per (origin, identifier) under
        // independent placement, per (origin, arc) under layered placement
        // (co-location collapses a whole query, and often several queries,
        // into one job).
        let t2;
        let outcomes = match self.config.placement_mode {
            PlacementMode::Independent => {
                let mut job_of: FxHashMap<(u32, u32), usize> = FxHashMap::default();
                let mut jobs: Vec<(Id, Id)> = Vec::new();
                for (origin, ids) in origins.iter().zip(&ids_per_query) {
                    for &ident in ids {
                        job_of.entry((origin.0, ident)).or_insert_with(|| {
                            jobs.push((*origin, self.place(ident)));
                            jobs.len() - 1
                        });
                    }
                }
                let routed = self.route_jobs_parallel(&jobs);
                t2 = std::time::Instant::now();

                // Phase 3: sequential commit in trace order.
                queries
                    .iter()
                    .zip(hashed)
                    .zip(origins)
                    .zip(ids_per_query)
                    .map(|(((q, h), origin), ids)| {
                        let routes: Vec<(Id, usize)> = ids
                            .iter()
                            .map(|&ident| routed[job_of[&(origin.0, ident)]])
                            .collect();
                        self.finish_query_routed(q, h, ids, routes)
                    })
                    .collect()
            }
            PlacementMode::Layered => {
                // Anchors are pure functions of the hashed range — memoize
                // per distinct range, then route one arc lookup per
                // distinct (origin, arc) pair.
                let anchor_vals: Vec<u32> = {
                    let mut memo: FxHashMap<&RangeSet, u32> = FxHashMap::default();
                    hashed
                        .iter()
                        .map(|h| {
                            *memo
                                .entry(h)
                                .or_insert_with(|| layered_anchor(&self.anchors, h))
                        })
                        .collect()
                };
                let mut job_of: FxHashMap<(u32, u32), usize> = FxHashMap::default();
                let mut jobs: Vec<(Id, Id)> = Vec::new();
                for (origin, &anchor) in origins.iter().zip(&anchor_vals) {
                    let base = arc_base(anchor);
                    job_of.entry((origin.0, base.0)).or_insert_with(|| {
                        jobs.push((*origin, base));
                        jobs.len() - 1
                    });
                }
                let routed = self.route_jobs_parallel(&jobs);
                t2 = std::time::Instant::now();

                // Phase 3: sequential commit in trace order.
                let mut outs = Vec::with_capacity(queries.len());
                for (i, (q, (h, ids))) in queries
                    .iter()
                    .zip(hashed.into_iter().zip(ids_per_query))
                    .enumerate()
                {
                    let origin = origins[i];
                    let anchor = anchor_vals[i];
                    let route = routed[job_of[&(origin.0, arc_base(anchor).0)]];
                    let plan = plan_layered_routed(
                        &self.config,
                        &self.groups,
                        &self.ring,
                        route,
                        anchor,
                        &h,
                        &ids,
                    );
                    outs.push(commit_layered(
                        &self.config,
                        &self.telemetry,
                        &mut self.peers,
                        &mut self.stats,
                        q,
                        h,
                        ids,
                        plan,
                        true,
                    ));
                }
                outs
            }
        };
        let timings = BatchTimings {
            hash_secs: (t1 - t0).as_secs_f64(),
            route_secs: (t2 - t1).as_secs_f64(),
            commit_secs: t2.elapsed().as_secs_f64(),
        };
        (outcomes, timings)
    }

    /// The pre-sharding batch engine: identifiers through the
    /// per-function compiled loop (no fused group kernels), routing and
    /// commit both sequential — the shape of `query_batch` before the
    /// sharded engine landed. Kept as the baseline the throughput bench
    /// compares against; results are bit-identical to [`Self::query`].
    pub fn query_batch_legacy(&mut self, queries: &[RangeSet]) -> Vec<QueryOutcome> {
        let (hashed, ids_per_query) =
            self.batch_resolve_identifiers_with(queries, BatchKernels::PerFunction);
        queries
            .iter()
            .zip(hashed)
            .zip(ids_per_query)
            .map(|((q, h), ids)| self.finish_query(q, h, ids))
            .collect()
    }

    /// Phase 1 of the batch engine: hash every distinct uncached range in
    /// parallel, then replay cache accounting (hits, misses, insertions,
    /// FIFO evictions) sequentially in trace order. Returns the hashed
    /// ranges and each query's identifiers.
    ///
    /// Values are pure functions of the range, so a range the sequential
    /// path would compute twice (missed, cached, evicted, missed again
    /// under a capacity bound) is computed once here and reused from a
    /// batch-local value store — the *accounting* still registers both
    /// misses.
    fn batch_resolve_identifiers(
        &mut self,
        queries: &[RangeSet],
    ) -> (Vec<RangeSet>, Vec<Vec<u32>>) {
        self.batch_resolve_identifiers_with(queries, BatchKernels::Fused)
    }

    fn batch_resolve_identifiers_with(
        &mut self,
        queries: &[RangeSet],
        kernels: BatchKernels,
    ) -> (Vec<RangeSet>, Vec<Vec<u32>>) {
        let padding = self.config.padding;
        for q in queries {
            assert!(!q.is_empty(), "cannot query an empty range");
        }
        let hashed: Vec<RangeSet> = queries
            .iter()
            .map(|q| Self::hashed_range(q, padding))
            .collect();

        // Batch-local value store: every distinct hashed range, valued
        // from the live cache when present, computed otherwise.
        let mut values: FxHashMap<&RangeSet, Vec<u32>> = FxHashMap::default();
        let mut todo: Vec<&RangeSet> = Vec::new();
        for h in &hashed {
            if values.contains_key(h) {
                continue;
            }
            if let Some(ids) = self.ident_cache.map.get(h) {
                values.insert(h, ids.clone());
            } else {
                values.insert(h, Vec::new()); // placeholder, filled below
                todo.push(h);
            }
        }

        // Fan the distinct uncached ranges across worker threads. Hashing
        // is pure (`&HashGroups` is shared read-only), so parallelism
        // cannot perturb determinism.
        if !todo.is_empty() {
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(todo.len());
            let groups = &self.groups;
            let next = parking_lot::Mutex::new(0usize);
            let (tx, rx) = crossbeam::channel::unbounded();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let todo = &todo;
                    s.spawn(move || loop {
                        let i = {
                            let mut n = next.lock();
                            let i = *n;
                            *n += 1;
                            i
                        };
                        let Some(range) = todo.get(i) else { break };
                        let ids = match kernels {
                            BatchKernels::Fused => groups.identifiers(range),
                            BatchKernels::PerFunction => groups.identifiers_per_function(range),
                        };
                        let _ = tx.send((i, ids));
                    });
                }
            });
            drop(tx);
            let mut results: Vec<Option<Vec<u32>>> = vec![None; todo.len()];
            while let Ok((i, ids)) = rx.recv() {
                results[i] = Some(ids);
            }
            for (range, ids) in todo.into_iter().zip(results) {
                let ids = ids.expect("worker delivered every claimed index");
                values.insert(range, ids);
            }
        }

        // Replay accounting in trace order against the live cache — the
        // same hit/miss/insert/evict decisions the sequential path makes,
        // with identifier values served from the batch-local store.
        let mut ids_per_query: Vec<Vec<u32>> = Vec::with_capacity(hashed.len());
        for h in &hashed {
            if self.ident_cache.map.contains_key(h) {
                self.ident_cache.hits += 1;
                self.telemetry.counter_add("core.ident_cache.hits", 1);
            } else {
                self.ident_cache.misses += 1;
                self.telemetry.counter_add("core.ident_cache.misses", 1);
                self.ident_cache_insert(h.clone(), values[h].clone());
            }
            ids_per_query.push(values[h].clone());
        }
        (hashed, ids_per_query)
    }

    /// Resolve a slice of `(origin, placed key)` routing jobs in parallel
    /// against the immutable ring. Pure; result order matches job order.
    fn route_jobs_parallel(&self, jobs: &[(Id, Id)]) -> Vec<(Id, usize)> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(jobs.len());
        let ring = &self.ring;
        let next = parking_lot::Mutex::new(0usize);
        let (tx, rx) = crossbeam::channel::unbounded();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                s.spawn(move || loop {
                    let i = {
                        let mut n = next.lock();
                        let i = *n;
                        *n += 1;
                        i
                    };
                    let Some(&(origin, key)) = jobs.get(i) else {
                        break;
                    };
                    let _ = tx.send((i, ring.lookup(origin, key)));
                });
            }
        });
        drop(tx);
        let mut routed: Vec<(Id, usize)> = vec![(Id(0), 0); jobs.len()];
        let mut delivered = 0usize;
        while let Ok((i, route)) = rx.recv() {
            routed[i] = route;
            delivered += 1;
        }
        assert_eq!(delivered, jobs.len(), "worker delivered every claimed job");
        routed
    }

    /// Store a partition range directly (bypassing the query path) — used
    /// by the load-balance experiments, which populate the table without
    /// measuring match quality. Returns the number of copies placed (an
    /// owner without storage state is skipped, never a panic).
    pub fn store_partition(&mut self, range: &RangeSet) -> usize {
        let identifiers = self.groups.identifiers(range);
        let anchor = match self.config.placement_mode {
            PlacementMode::Independent => None,
            PlacementMode::Layered => Some(layered_anchor(&self.anchors, range)),
        };
        let mut placed = 0;
        for ident in identifiers {
            let pos = match anchor {
                None => self.place(ident),
                Some(a) => layered_position(a, ident),
            };
            let owner = self.ring.successor_of(pos);
            if let Some(peer) = self.peers.get_mut(&owner.0) {
                placed += peer.store(ident, range.clone()) as usize;
            }
        }
        placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchMeasure;
    use ars_lsh::LshFamilyKind;

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    fn net(n: usize) -> RangeSelectNetwork {
        RangeSelectNetwork::new(n, SystemConfig::default().with_seed(99))
    }

    #[test]
    fn first_query_misses_and_caches() {
        let mut n = net(50);
        let out = n.query(&r(30, 50));
        assert!(out.best_match.is_none());
        assert_eq!(out.similarity, 0.0);
        assert_eq!(out.recall, 0.0);
        assert!(!out.exact);
        assert!(out.stored);
        assert_eq!(out.hops.len(), 5);
        assert_eq!(out.identifiers.len(), 5);
        assert!(out.peers_contacted >= 1 && out.peers_contacted <= 5);
        assert_eq!(out.attempts, 5, "one attempt per identifier, no retries");
        assert!(!out.fell_back_to_source);
        assert!(n.total_partitions() >= 1);
    }

    #[test]
    fn identical_requery_is_exact() {
        let mut n = net(50);
        n.query(&r(30, 50));
        let out = n.query(&r(30, 50));
        assert!(out.exact);
        assert_eq!(out.recall, 1.0);
        assert_eq!(out.similarity, 1.0);
        assert_eq!(out.best_match, Some(r(30, 50)));
        // Exact hit: nothing new stored.
        assert!(!out.stored);
    }

    #[test]
    fn similar_query_usually_finds_neighbor() {
        // [30,50] cached; [30,49] has J ≈ 0.95 — with k=20, l=5 the match
        // probability is ~0.98 per the amplification curve. Use several
        // independent networks to avoid flakiness.
        let mut hits = 0;
        for seed in 0..10 {
            let mut n = RangeSelectNetwork::new(50, SystemConfig::default().with_seed(seed));
            n.query(&r(30, 50));
            let out = n.query(&r(30, 49));
            if out.best_match == Some(r(30, 50)) {
                hits += 1;
            }
        }
        assert!(hits >= 7, "only {hits}/10 near-identical queries matched");
    }

    #[test]
    fn dissimilar_query_does_not_match() {
        let mut n = net(50);
        n.query(&r(0, 20));
        let out = n.query(&r(500, 600));
        assert!(out.best_match.is_none() || out.similarity == 0.0);
    }

    #[test]
    fn cache_off_never_stores() {
        let mut n = RangeSelectNetwork::new(30, SystemConfig::default().with_cache_on_miss(false));
        n.query(&r(1, 10));
        n.query(&r(1, 10));
        assert_eq!(n.total_partitions(), 0);
        assert_eq!(n.stats().stored, 0);
    }

    #[test]
    fn padding_stores_padded_range() {
        let mut n =
            RangeSelectNetwork::new(30, SystemConfig::default().with_padding(0.2).with_seed(5));
        // [100,199] padded 20% → [80,219].
        n.query(&r(100, 199));
        let padded = r(80, 219);
        let found = n
            .ring()
            .node_ids()
            .iter()
            .any(|id| n.peer(*id).unwrap().contains_range(&padded));
        assert!(found, "padded partition not stored anywhere");
    }

    #[test]
    fn padded_requery_recall_exceeds_query() {
        // A query contained in a previously-padded partition gets full
        // recall even though it is not identical.
        let mut n = RangeSelectNetwork::new(
            30,
            SystemConfig::default()
                .with_padding(0.2)
                .with_matching(MatchMeasure::Containment)
                .with_seed(11),
        );
        n.query(&r(100, 199)); // stores [80, 219]
        let out = n.query(&r(100, 199));
        assert_eq!(out.recall, 1.0);
    }

    #[test]
    fn local_index_finds_matches_plain_bucket_misses() {
        // Store under one identifier set; query with a range similar enough
        // to land on the same *peer* in a tiny network but under different
        // identifiers. With few peers, every identifier maps to one of few
        // peers, so the local index sees everything stored there.
        let config = SystemConfig::default().with_seed(3);
        let mut plain = RangeSelectNetwork::new(2, config.clone());
        let mut indexed = RangeSelectNetwork::new(2, config.with_local_index(true));
        for n in [&mut plain, &mut indexed] {
            n.query(&r(200, 300));
        }
        let q = r(190, 310); // similar but likely different identifiers
        let out_plain = plain.query(&q);
        let out_indexed = indexed.query(&q);
        assert!(out_indexed.recall >= out_plain.recall);
        // With 2 peers the indexed system must at least see the partition.
        assert!(out_indexed.best_match.is_some());
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(20);
        n.query(&r(0, 10));
        n.query(&r(0, 10));
        let s = n.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.exact, 1);
        // r(0,10) is narrow enough that all 5 groups hash it to one
        // identifier — the within-query dedup routes it once and books
        // the other 4 as saved lookups.
        assert_eq!(s.lookups, 2);
        assert_eq!(s.dedup_saved_lookups, 8);
        assert!(s.matched >= 1);
    }

    #[test]
    fn wide_query_still_routes_five_lookups() {
        let mut n = net(20);
        let out = n.query(&r(30, 50));
        assert_eq!(out.hops.len(), 5, "distinct identifiers all routed");
        assert_eq!(n.stats().lookups, 5);
        assert_eq!(n.stats().dedup_saved_lookups, 0);
    }

    #[test]
    fn store_partition_places_l_copies() {
        let mut n = net(100);
        n.store_partition(&r(5, 25));
        // l=5 identifiers; distinct owners may coincide, but the total
        // stored count equals the number of distinct (identifier, owner)
        // pairs — at most 5, at least 1.
        let total = n.total_partitions();
        assert!((1..=5).contains(&total), "stored {total} copies");
    }

    #[test]
    fn linear_family_finds_exact_match() {
        let mut n = RangeSelectNetwork::new(
            30,
            SystemConfig::default()
                .with_family(LshFamilyKind::Linear)
                .with_seed(8),
        );
        n.query(&r(30, 50));
        let out = n.query(&r(30, 50));
        assert!(out.exact, "linear permutations must find identical ranges");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_query_rejected() {
        net(5).query(&RangeSet::empty());
    }

    #[test]
    fn run_trace_collects_outcomes() {
        let mut n = net(20);
        let queries = [r(0, 5), r(10, 20), r(0, 5)];
        let outs = n.run_trace(queries.iter());
        assert_eq!(outs.len(), 3);
        assert!(outs[2].exact);
    }

    #[test]
    fn identifier_cache_counts_hits_and_misses() {
        let mut n = net(20);
        n.query(&r(0, 10));
        n.query(&r(0, 10));
        n.query(&r(5, 15));
        let c = n.identifier_cache();
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    /// A trace with repeats, overlaps, and multi-peer spread.
    fn batch_trace() -> Vec<RangeSet> {
        let mut qs = Vec::new();
        for i in 0..40u32 {
            let lo = (i * 37) % 900;
            qs.push(r(lo, lo + 10 + (i % 7) * 30));
            if i % 3 == 0 {
                qs.push(r(30, 50)); // popular repeat
            }
        }
        qs
    }

    #[test]
    fn query_batch_identical_to_sequential() {
        let config = SystemConfig::default().with_seed(42).with_padding(0.1);
        let mut seq = RangeSelectNetwork::new(40, config.clone());
        let mut bat = RangeSelectNetwork::new(40, config);
        let trace = batch_trace();

        let out_seq: Vec<QueryOutcome> = trace.iter().map(|q| seq.query(q)).collect();
        let out_bat = bat.query_batch(&trace);

        assert_eq!(out_seq, out_bat);
        assert_eq!(seq.stats(), bat.stats());
        assert_eq!(seq.total_partitions(), bat.total_partitions());
        // Cache accounting matches the sequential path exactly.
        assert_eq!(seq.identifier_cache().hits(), bat.identifier_cache().hits());
        assert_eq!(
            seq.identifier_cache().misses(),
            bat.identifier_cache().misses()
        );
        assert_eq!(seq.identifier_cache().len(), bat.identifier_cache().len());
        assert!(bat.identifier_cache().hits() > 0, "trace has repeats");
    }

    #[test]
    fn query_batch_then_queries_stay_consistent() {
        // Interleaving batch and single-query calls shares the same cache
        // and RNG stream as an all-sequential run.
        let config = SystemConfig::default().with_seed(7);
        let mut seq = RangeSelectNetwork::new(25, config.clone());
        let mut mixed = RangeSelectNetwork::new(25, config);
        let trace = batch_trace();
        let (head, tail) = trace.split_at(trace.len() / 2);

        let mut out_seq: Vec<QueryOutcome> = Vec::new();
        for q in &trace {
            out_seq.push(seq.query(q));
        }
        let mut out_mixed = mixed.query_batch(head);
        for q in tail {
            out_mixed.push(mixed.query(q));
        }
        assert_eq!(out_seq, out_mixed);
        assert_eq!(seq.stats(), mixed.stats());
    }

    #[test]
    fn telemetry_surfaces_cache_hit_rate_through_registry() {
        let mut n = net(30);
        let tel = ars_telemetry::Telemetry::recording();
        n.set_telemetry(tel.clone());
        let trace = batch_trace();
        n.query_batch(&trace);
        n.query_batch(&trace); // identical ranges: second pass is all hits
        let snap = tel.snapshot();
        let hits = snap.counter("core.ident_cache.hits");
        let misses = snap.counter("core.ident_cache.misses");
        assert!(hits > 0, "repeated batches must report a >0 hit rate");
        assert!(hits > misses, "second identical batch hits on every range");
        // The registry mirrors the cache's own counters exactly, and every
        // query does exactly one cache lookup.
        assert_eq!(hits, n.identifier_cache().hits());
        assert_eq!(misses, n.identifier_cache().misses());
        assert_eq!(hits + misses, snap.counter("core.queries"));
        // Per-query spans were recorded for both batches.
        let spans = tel
            .events()
            .iter()
            .filter(|e| e.kind == ars_telemetry::EventKind::SpanStart && e.name == "core.query")
            .count();
        assert_eq!(spans, 2 * trace.len());
    }

    #[test]
    fn query_batch_legacy_identical_to_sequential() {
        let config = SystemConfig::default().with_seed(13);
        let mut seq = RangeSelectNetwork::new(30, config.clone());
        let mut bat = RangeSelectNetwork::new(30, config);
        let trace = batch_trace();
        let out_seq: Vec<QueryOutcome> = trace.iter().map(|q| seq.query(q)).collect();
        let out_bat = bat.query_batch_legacy(&trace);
        assert_eq!(out_seq, out_bat);
        assert_eq!(seq.stats(), bat.stats());
    }

    #[test]
    fn bounded_cache_evicts_fifo_and_counts() {
        // Capacity 2 with a 4-distinct-range trace forces mid-run
        // evictions and a re-miss on an evicted range.
        let config = SystemConfig::default()
            .with_seed(17)
            .with_ident_cache_capacity(2);
        let mut n = RangeSelectNetwork::new(20, config);
        let trace = [r(0, 10), r(20, 30), r(40, 50), r(0, 10)];
        for q in &trace {
            n.query(q);
        }
        let c = n.identifier_cache();
        assert_eq!(c.capacity(), 2);
        assert!(c.len() <= 2);
        // r(0,10) was evicted by r(40,50) before its repeat: 4 misses.
        assert_eq!(c.misses(), 4);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn query_batch_identical_to_sequential_with_bounded_cache() {
        // The batched engine must replay FIFO eviction exactly: same
        // outcomes, same hit/miss/eviction counts, same final contents —
        // including ranges that miss, get cached, get evicted mid-batch,
        // and miss again.
        for capacity in [1usize, 2, 3, 7] {
            let config = SystemConfig::default()
                .with_seed(23)
                .with_padding(0.1)
                .with_ident_cache_capacity(capacity);
            let mut seq = RangeSelectNetwork::new(30, config.clone());
            let mut bat = RangeSelectNetwork::new(30, config);
            let trace = batch_trace();
            let out_seq: Vec<QueryOutcome> = trace.iter().map(|q| seq.query(q)).collect();
            let out_bat = bat.query_batch(&trace);
            assert_eq!(out_seq, out_bat, "outcomes diverged at capacity {capacity}");
            assert_eq!(seq.stats(), bat.stats());
            let (sc, bc) = (seq.identifier_cache(), bat.identifier_cache());
            assert_eq!(sc.hits(), bc.hits(), "capacity {capacity}");
            assert_eq!(sc.misses(), bc.misses(), "capacity {capacity}");
            assert_eq!(sc.evictions(), bc.evictions(), "capacity {capacity}");
            assert_eq!(sc.len(), bc.len(), "capacity {capacity}");
            assert!(bc.len() <= capacity);
            assert!(
                bc.evictions() > 0,
                "trace must overflow capacity {capacity}"
            );
            // Final cached contents are identical, key by key.
            for (k, v) in &sc.map {
                assert_eq!(bc.map.get(k), Some(v), "contents diverged at {k}");
            }
        }
    }

    #[test]
    fn bounded_cache_exports_size_gauge_and_eviction_counter() {
        let config = SystemConfig::default()
            .with_seed(29)
            .with_ident_cache_capacity(2);
        let mut n = RangeSelectNetwork::new(20, config);
        let tel = ars_telemetry::Telemetry::recording();
        n.set_telemetry(tel.clone());
        n.query_batch(&[r(0, 10), r(20, 30), r(40, 50), r(0, 10)]);
        let snap = tel.snapshot();
        assert_eq!(snap.gauge("core.ident_cache.size"), Some(2));
        assert_eq!(
            snap.counter("core.ident_cache.evictions"),
            n.identifier_cache().evictions()
        );
        assert!(n.identifier_cache().evictions() > 0);
    }

    #[test]
    fn query_batch_empty_slice_is_noop() {
        let mut n = net(10);
        let outs = n.query_batch(&[]);
        assert!(outs.is_empty());
        assert_eq!(n.stats().queries, 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn query_batch_rejects_empty_range() {
        net(5).query_batch(&[RangeSet::empty()]);
    }

    fn layered_config(seed: u64) -> SystemConfig {
        SystemConfig::default()
            .with_seed(seed)
            .with_placement_mode(PlacementMode::Layered)
            .with_probes(16)
    }

    #[test]
    fn layered_query_spends_one_lookup() {
        let mut n = RangeSelectNetwork::new(48, layered_config(3));
        let out = n.query(&r(30, 50));
        assert_eq!(out.hops.len(), 1, "layered = one arc lookup");
        assert_eq!(out.attempts, 1);
        assert!(out.peers_contacted <= n.config().walk_window);
        let s = n.stats();
        assert_eq!(s.lookups, 1);
        assert!((s.walk_steps as usize) < n.config().walk_window);
        assert!(s.probe_checks > 0, "probe budget 16 generates candidates");
        assert_eq!(s.dedup_saved_lookups, 0);
    }

    #[test]
    fn layered_exact_repeat_found_in_arc() {
        let mut n = RangeSelectNetwork::new(48, layered_config(5));
        n.query(&r(30, 50));
        let out = n.query(&r(30, 50));
        assert!(out.exact, "repeat query must find its own cached partition");
        assert_eq!(out.recall, 1.0);
    }

    #[test]
    fn layered_store_partition_found_by_query() {
        // Direct stores land at the layered positions, where queries look.
        let mut n = RangeSelectNetwork::new(48, layered_config(9).with_cache_on_miss(false));
        n.store_partition(&r(100, 200));
        let out = n.query(&r(100, 200));
        assert!(out.exact, "stored partition must be visible in its arc");
    }

    #[test]
    fn layered_usually_finds_jittered_neighbor() {
        // Same regime as similar_query_usually_finds_neighbor: [30,50]
        // cached, [30,49] queried (J ≈ 0.95). Layered adds the anchor
        // gate (≈ J at layers=1); multi-probe recovers base-identifier
        // misses at the visited peers.
        let mut hits = 0;
        for seed in 0..10 {
            let mut n = RangeSelectNetwork::new(48, layered_config(seed));
            n.query(&r(30, 50));
            let out = n.query(&r(30, 49));
            if out.best_match == Some(r(30, 50)) {
                hits += 1;
            }
        }
        assert!(
            hits >= 6,
            "only {hits}/10 near-identical layered queries matched"
        );
    }

    #[test]
    fn layered_batch_identical_to_sequential() {
        for capacity in [0usize, 3] {
            let config = layered_config(42)
                .with_padding(0.1)
                .with_ident_cache_capacity(capacity);
            let mut seq = RangeSelectNetwork::new(40, config.clone());
            let mut bat = RangeSelectNetwork::new(40, config);
            let trace = batch_trace();
            let out_seq: Vec<QueryOutcome> = trace.iter().map(|q| seq.query(q)).collect();
            let out_bat = bat.query_batch(&trace);
            assert_eq!(out_seq, out_bat, "capacity {capacity}");
            assert_eq!(seq.stats(), bat.stats());
            assert_eq!(seq.total_partitions(), bat.total_partitions());
            assert_eq!(seq.identifier_cache().hits(), bat.identifier_cache().hits());
            assert_eq!(
                seq.identifier_cache().misses(),
                bat.identifier_cache().misses()
            );
        }
    }

    #[test]
    fn commit_routed_dedups_repeated_identifiers() {
        // Two groups hashing to the same bucket: one lookup, one saved.
        let config = SystemConfig::default();
        let tel = Telemetry::noop();
        let mut peers: FxHashMap<u32, Peer> =
            [(100u32, Peer::new(Id(100))), (200u32, Peer::new(Id(200)))]
                .into_iter()
                .collect();
        let mut stats = NetworkStats::default();
        let q = r(0, 10);
        let out = commit_routed(
            &config,
            &tel,
            &mut peers,
            &mut stats,
            &q,
            q.clone(),
            vec![7, 7, 9],
            vec![(Id(100), 2), (Id(100), 2), (Id(200), 3)],
            false,
        );
        assert_eq!(out.hops, vec![2, 3], "duplicate identifier not re-routed");
        assert_eq!(out.attempts, 2);
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.total_hops, 5);
        assert_eq!(stats.dedup_saved_lookups, 1);
    }
}
