//! The exact-match baseline (§3.1).
//!
//! Before introducing LSH, the paper walks through the obvious DHT design:
//! "we could use the specific range [30 − 50] as a key, which is used to
//! hash the qualifying tuples. When a query is later posed with exactly
//! the age range of [30 − 50], this cached partition … can be retrieved" —
//! and then observes its fatal flaw: `[30, 49]` hashes elsewhere and
//! "would not benefit from the stored partition although … the entire
//! answer set is contained in the cached partition."
//!
//! [`ExactMatchNetwork`] implements that baseline faithfully (SHA-1 of the
//! exact range as the DHT key) so the comparison the paper argues verbally
//! can be *measured* — see the `baseline` bench binary.

use crate::config::SystemConfig;
use crate::network::QueryOutcome;
use ars_chord::sha1::Sha1;
use ars_chord::{Id, Ring};
use ars_common::{DetRng, FxHashMap, FxHashSet};
use ars_lsh::RangeSet;

/// SHA-1 of a range's canonical interval list — the §3.1 DHT key.
pub fn exact_key(range: &RangeSet) -> Id {
    let mut h = Sha1::new();
    for &(lo, hi) in range.intervals() {
        h.update(&lo.to_be_bytes());
        h.update(&hi.to_be_bytes());
    }
    let d = h.finalize();
    Id(u32::from_be_bytes([d[0], d[1], d[2], d[3]]))
}

/// The exact-match caching baseline.
#[derive(Debug, Clone)]
pub struct ExactMatchNetwork {
    ring: Ring,
    /// Per-peer set of cached exact ranges.
    peers: FxHashMap<u32, FxHashSet<RangeSet>>,
    rng: DetRng,
    /// Identifier lookups routed.
    pub lookups: u64,
    /// Total overlay hops.
    pub total_hops: u64,
}

impl ExactMatchNetwork {
    /// Build over the same seeded ring construction as
    /// [`crate::RangeSelectNetwork`], so comparisons share topology.
    pub fn new(n_peers: usize, config: &SystemConfig) -> ExactMatchNetwork {
        let mut rng = DetRng::new(config.seed);
        let _group_rng = rng.fork(); // keep the stream aligned with RangeSelectNetwork
        let ring_seed = rng.next_u64();
        let ring = Ring::from_seed(n_peers, ring_seed);
        let peers = ring
            .node_ids()
            .iter()
            .map(|&id| (id.0, FxHashSet::default()))
            .collect();
        ExactMatchNetwork {
            ring,
            peers,
            rng,
            lookups: 0,
            total_hops: 0,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total cached ranges.
    pub fn total_partitions(&self) -> usize {
        self.peers.values().map(FxHashSet::len).sum()
    }

    /// One query: a single DHT lookup on the exact key. Hit ⇒ recall 1;
    /// miss ⇒ recall 0 and the partition is cached.
    pub fn query(&mut self, q: &RangeSet) -> QueryOutcome {
        assert!(!q.is_empty(), "cannot query an empty range");
        let key = exact_key(q);
        let origin = {
            let ids = self.ring.node_ids();
            ids[self.rng.gen_index(ids.len())]
        };
        let (owner, hops) = self.ring.lookup(origin, key);
        self.lookups += 1;
        self.total_hops += hops as u64;
        let bucket = self.peers.get_mut(&owner.0).expect("owner exists");
        let hit = bucket.contains(q);
        let stored = if hit { false } else { bucket.insert(q.clone()) };
        QueryOutcome {
            query: q.clone(),
            best_match: hit.then(|| q.clone()),
            similarity: if hit { 1.0 } else { 0.0 },
            recall: if hit { 1.0 } else { 0.0 },
            exact: hit,
            stored,
            hops: vec![hops],
            identifiers: vec![key.0],
            peers_contacted: 1,
            attempts: 1,
            fell_back_to_source: false,
            partition_degraded: false,
        }
    }

    /// Run a whole trace.
    pub fn run_trace<'a, I: IntoIterator<Item = &'a RangeSet>>(
        &mut self,
        queries: I,
    ) -> Vec<QueryOutcome> {
        queries.into_iter().map(|q| self.query(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recall::pct_fully_answered;
    use crate::RangeSelectNetwork;
    use ars_workload::{clustered_trace, uniform_trace};

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    #[test]
    fn exact_repeat_hits_nothing_else_does() {
        let mut net = ExactMatchNetwork::new(30, &SystemConfig::default().with_seed(1));
        assert!(!net.query(&r(30, 50)).exact);
        assert!(net.query(&r(30, 50)).exact);
        // The paper's motivating failure: [30, 49] is fully contained in
        // the cached [30, 50] but the exact-match baseline cannot see it.
        let near = net.query(&r(30, 49));
        assert!(!near.exact);
        assert_eq!(near.recall, 0.0);
    }

    #[test]
    fn exact_key_is_stable_and_discriminating() {
        assert_eq!(exact_key(&r(30, 50)), exact_key(&r(30, 50)));
        assert_ne!(exact_key(&r(30, 50)), exact_key(&r(30, 49)));
        assert_ne!(
            exact_key(&RangeSet::from_intervals([(0, 1), (3, 4)])),
            exact_key(&RangeSet::from_intervals([(0, 4)]))
        );
    }

    #[test]
    fn single_lookup_per_query() {
        let mut net = ExactMatchNetwork::new(50, &SystemConfig::default().with_seed(2));
        net.query(&r(0, 10));
        net.query(&r(0, 10));
        assert_eq!(net.lookups, 2);
        assert_eq!(net.total_partitions(), 1);
    }

    #[test]
    fn approximate_system_dominates_on_similar_queries() {
        // The paper's whole point, quantified: on a clustered workload
        // (similar-but-rarely-identical queries) the LSH system answers
        // far more queries than the §3.1 exact-match baseline.
        let trace = clustered_trace(1500, 0, 1000, 25, 8, 9);
        let config = SystemConfig::default().with_seed(5);
        let mut exact = ExactMatchNetwork::new(100, &config);
        let mut approx = RangeSelectNetwork::new(100, config);
        let e = exact.run_trace(trace.queries());
        let a = approx.run_trace(trace.queries());
        let cut = trace.len() / 5;
        let pe = pct_fully_answered(&e[cut..]);
        let pa = pct_fully_answered(&a[cut..]);
        assert!(
            pa > pe + 10.0,
            "approximate ({pa:.1}%) must clearly beat exact baseline ({pe:.1}%)"
        );
    }

    #[test]
    fn baselines_share_ring_topology() {
        let config = SystemConfig::default().with_seed(7);
        let exact = ExactMatchNetwork::new(40, &config);
        let approx = RangeSelectNetwork::new(40, config);
        assert_eq!(exact.ring.node_ids(), approx.ring().node_ids());
    }

    #[test]
    fn uniform_trace_baseline_hit_rate_matches_repetition_rate() {
        let trace = uniform_trace(3000, 0, 1000, 11);
        let mut net = ExactMatchNetwork::new(50, &SystemConfig::default().with_seed(3));
        let outs = net.run_trace(trace.queries());
        let hits = outs.iter().filter(|o| o.exact).count();
        let expected_reps = (trace.len() - trace.distinct()) as f64;
        // Every hit is a repetition of an earlier query, exactly.
        assert_eq!(hits as f64, expected_reps);
    }
}
