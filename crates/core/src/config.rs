//! System configuration.

use crate::durable::DurabilityConfig;
use ars_lsh::LshFamilyKind;

/// How a bucket-owning peer picks the best stored partition for a query
/// (the paper's §5.2 comparison, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMeasure {
    /// Jaccard set similarity `|Q∩R| / |Q∪R|` — consistent with the hash
    /// family's locality principle.
    Jaccard,
    /// Containment `|Q∩R| / |Q|` — what the user actually cares about
    /// (how much of the answer the partition holds).
    Containment,
}

/// How a partition identifier is mapped to a ring position.
///
/// Min-hash identifiers are far from uniform: the minimum of `n` permuted
/// values concentrates near `2³² / n`, so using identifiers directly as
/// ring positions piles every bucket onto the few peers owning the low
/// arc of the circle. Chord's own convention — hash the key before
/// placement — preserves identifier *equality* (all that bucket matching
/// needs) while spreading buckets uniformly; it is what reproduces the
/// paper's balanced Fig. 11. The direct mapping is kept for the ablation
/// that demonstrates the imbalance (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// `ring position = SHA-1(identifier)` (Chord's key hashing).
    Uniformized,
    /// `ring position = identifier` (the paper's literal reading; severely
    /// imbalanced for min-hash identifiers).
    Direct,
}

/// How a query's bucket set is laid out on the ring and reached.
///
/// Orthogonal to [`Placement`] (which maps one identifier to one
/// position): the mode decides whether the `l` identifiers of a query
/// are *independent* positions (one Chord lookup each — the paper's §4
/// procedure) or *layered* into one arc keyed by a coarse anchor sketch,
/// reachable with a single lookup plus a bounded successor-list walk
/// (see `ars_chord::layered` and DESIGN.md §6d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMode {
    /// One placed position and one lookup per group identifier — the
    /// default; bit-identical to the pre-layered query paths.
    Independent,
    /// All of a query's buckets co-located in the anchor's arc: one
    /// lookup + a successor walk of at most
    /// [`SystemConfig::walk_window`] peers serves every group's bucket,
    /// and multi-probe candidates ([`SystemConfig::probes`]) are checked
    /// at the visited peers for free.
    Layered,
}

/// Full configuration of a [`crate::RangeSelectNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// LSH family for partition identifiers.
    pub family: LshFamilyKind,
    /// Hash functions per group (`k`; paper: 20).
    pub k: usize,
    /// Number of groups / identifiers per range (`l`; paper: 5).
    pub l: usize,
    /// Bucket matching measure.
    pub matching: MatchMeasure,
    /// Query padding fraction (§5.2; paper evaluates 0.0 and 0.2). The
    /// query range is expanded by this fraction of its width on each edge
    /// before hashing, matching, and caching.
    pub padding: f64,
    /// Cache the queried partition at the `l` identifier owners when no
    /// exact match was found (the paper's §4 procedure). Disable to measure
    /// a read-only system.
    pub cache_on_miss: bool,
    /// §5.3 extension: a contacted peer searches an index over *all* its
    /// buckets, not just the one bucket the identifier names.
    pub use_local_index: bool,
    /// Identifier → ring-position mapping.
    pub placement: Placement,
    /// Bucket layout / lookup strategy (see [`PlacementMode`]). The
    /// default `Independent` keeps every query path bit-identical to the
    /// pre-layered system; `Layered` is the opt-in half-the-lookups mode,
    /// supported on the static-network paths (sequential, batched, and
    /// concurrent engine).
    pub placement_mode: PlacementMode,
    /// Multi-probe budget: extra ranked candidate identifiers
    /// (`ars_lsh::probe`) checked at visited peers in layered mode. `0`
    /// disables probing. Probe checks are local to peers a query already
    /// reached — they cost no messages.
    pub probes: usize,
    /// Anchor sketch width (`L`) in layered mode: the anchor is the XOR
    /// of `L` min-hashes, so similar ranges share an arc with probability
    /// ≈ `J^L`. Small values gate less (higher recall, coarser
    /// co-location); must be ≥ 1.
    pub layers: usize,
    /// Successor-walk bound in layered mode: after the single arc lookup,
    /// at most this many peers (the first owner included) are visited
    /// over existing successor links, one message per step. Must be ≥ 1.
    pub walk_window: usize,
    /// Successor replication factor for cached partitions (`r`): each
    /// stored partition is placed at the first `r` alive successors of its
    /// placed identifier, so up to `r - 1` abrupt failures leave a copy
    /// findable. `1` (the paper's implicit setting) disables replication;
    /// the fault-tolerance bench sweeps this (see `crate::resilient`).
    pub replication: usize,
    /// Durable per-peer bucket stores (see [`crate::durable`]). `None`
    /// (the default) is the paper's pure soft-state model: an abrupt
    /// failure loses the peer's cache. `Some` persists every placement
    /// and eviction to a crash-faulted op log, enabling
    /// [`crate::ChurnNetwork::crash`]/[`crate::ChurnNetwork::restart`]
    /// to bring peers back with their buckets recovered from disk.
    pub durability: Option<DurabilityConfig>,
    /// Capacity of the identifier memo cache
    /// ([`crate::network::IdentifierCache`]) in distinct ranges; `0` (the
    /// default) is unbounded. When bounded, entries are evicted FIFO —
    /// insertion order, never perturbed by hits — so the sequential and
    /// batched query paths evict identically.
    pub ident_cache_capacity: usize,
    /// Capacity of the Chord route cache (entries) consulted by lookups
    /// under churn ([`ars_chord::RouteCacheStats`]); `0` (the default)
    /// disables it. The cache is cleared on every membership or
    /// stabilization event, so it never changes which owner a lookup
    /// returns — only how many hops it spends (see `ars_chord::dynamic`).
    pub route_cache: usize,
    /// State shards of the concurrent query engine
    /// ([`crate::engine`]): peers, identifier-cache segments, and stats
    /// accumulators are partitioned into this many independently locked
    /// shards, each with its own deterministic RNG stream. A fixed default
    /// (rather than one derived from the core count) keeps engine outcomes
    /// machine-independent; must be at least 1.
    pub engine_shards: usize,
    /// Worker threads of the concurrent query engine. `0` (the default)
    /// means one per available core. Worker count never affects outcomes —
    /// only the schedule — so it is safe to tune per machine.
    pub engine_workers: usize,
    /// Maximum in-flight queries the engine accepts before
    /// [`crate::engine::QueryEngine::submit`] blocks (backpressure).
    pub engine_queue: usize,
    /// Seed for hash-function generation and origin-peer selection.
    pub seed: u64,
}

impl Default for SystemConfig {
    /// The paper's §5 parameters: approximate min-wise permutations,
    /// `k = 20`, `l = 5`, Jaccard matching, no padding, cache-on-miss.
    fn default() -> SystemConfig {
        SystemConfig {
            family: LshFamilyKind::ApproxMinWise,
            k: 20,
            l: 5,
            matching: MatchMeasure::Jaccard,
            padding: 0.0,
            cache_on_miss: true,
            use_local_index: false,
            placement: Placement::Uniformized,
            placement_mode: PlacementMode::Independent,
            probes: 0,
            layers: 1,
            walk_window: 4,
            replication: 1,
            durability: None,
            ident_cache_capacity: 0,
            route_cache: 0,
            engine_shards: 16,
            engine_workers: 0,
            engine_queue: 1024,
            seed: 0xA25_2003, // arbitrary fixed default
        }
    }
}

impl SystemConfig {
    /// Builder-style: set the hash family.
    pub fn with_family(mut self, family: LshFamilyKind) -> SystemConfig {
        self.family = family;
        self
    }

    /// Builder-style: set the matching measure.
    pub fn with_matching(mut self, matching: MatchMeasure) -> SystemConfig {
        self.matching = matching;
        self
    }

    /// Builder-style: set padding.
    ///
    /// # Panics
    /// Panics if `padding` is negative.
    pub fn with_padding(mut self, padding: f64) -> SystemConfig {
        assert!(padding >= 0.0, "padding must be non-negative");
        self.padding = padding;
        self
    }

    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> SystemConfig {
        self.seed = seed;
        self
    }

    /// Builder-style: set `k` and `l`.
    ///
    /// # Panics
    /// Panics if either is zero.
    pub fn with_kl(mut self, k: usize, l: usize) -> SystemConfig {
        assert!(k > 0 && l > 0, "k and l must be positive");
        self.k = k;
        self.l = l;
        self
    }

    /// Builder-style: enable the §5.3 local index.
    pub fn with_local_index(mut self, on: bool) -> SystemConfig {
        self.use_local_index = on;
        self
    }

    /// Builder-style: enable/disable cache-on-miss.
    pub fn with_cache_on_miss(mut self, on: bool) -> SystemConfig {
        self.cache_on_miss = on;
        self
    }

    /// Builder-style: set the identifier placement policy.
    pub fn with_placement(mut self, placement: Placement) -> SystemConfig {
        self.placement = placement;
        self
    }

    /// Builder-style: set the placement mode.
    pub fn with_placement_mode(mut self, mode: PlacementMode) -> SystemConfig {
        self.placement_mode = mode;
        self
    }

    /// Builder-style: set the multi-probe budget (`0` = no probing).
    pub fn with_probes(mut self, probes: usize) -> SystemConfig {
        self.probes = probes;
        self
    }

    /// Builder-style: set the layered-anchor sketch width.
    ///
    /// # Panics
    /// Panics if `layers` is zero (the anchor needs at least one
    /// min-hash).
    pub fn with_layers(mut self, layers: usize) -> SystemConfig {
        assert!(layers >= 1, "anchor sketch needs at least 1 layer");
        self.layers = layers;
        self
    }

    /// Builder-style: set the layered successor-walk bound.
    ///
    /// # Panics
    /// Panics if `window` is zero (the walk must visit the first owner).
    pub fn with_walk_window(mut self, window: usize) -> SystemConfig {
        assert!(window >= 1, "walk window must visit at least 1 peer");
        self.walk_window = window;
        self
    }

    /// Builder-style: set the successor replication factor.
    ///
    /// # Panics
    /// Panics if `r` is zero (a partition must live somewhere).
    pub fn with_replication(mut self, r: usize) -> SystemConfig {
        assert!(r >= 1, "replication factor must be at least 1");
        self.replication = r;
        self
    }

    /// Builder-style: give every peer a durable bucket store.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> SystemConfig {
        self.durability = Some(durability);
        self
    }

    /// Builder-style: bound the identifier memo cache (`0` = unbounded).
    pub fn with_ident_cache_capacity(mut self, capacity: usize) -> SystemConfig {
        self.ident_cache_capacity = capacity;
        self
    }

    /// Builder-style: enable the Chord route cache with the given capacity
    /// (`0` = disabled).
    pub fn with_route_cache(mut self, capacity: usize) -> SystemConfig {
        self.route_cache = capacity;
        self
    }

    /// Builder-style: set the concurrent engine's shard count.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_engine_shards(mut self, shards: usize) -> SystemConfig {
        assert!(shards >= 1, "engine needs at least 1 shard");
        self.engine_shards = shards;
        self
    }

    /// Builder-style: set the engine worker-thread count (`0` = one per
    /// available core).
    pub fn with_engine_workers(mut self, workers: usize) -> SystemConfig {
        self.engine_workers = workers;
        self
    }

    /// Builder-style: set the engine's in-flight query bound.
    ///
    /// # Panics
    /// Panics if `queue` is zero (the engine could never accept a query).
    pub fn with_engine_queue(mut self, queue: usize) -> SystemConfig {
        assert!(queue >= 1, "engine queue must admit at least 1 query");
        self.engine_queue = queue;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = SystemConfig::default();
        assert_eq!(c.k, 20);
        assert_eq!(c.l, 5);
        assert_eq!(c.family, LshFamilyKind::ApproxMinWise);
        assert_eq!(c.matching, MatchMeasure::Jaccard);
        assert_eq!(c.padding, 0.0);
        assert!(c.cache_on_miss);
        assert!(!c.use_local_index);
        assert_eq!(c.replication, 1, "paper stores one copy per identifier");
        assert_eq!(c.durability, None, "paper's cache is pure soft state");
        assert_eq!(c.ident_cache_capacity, 0, "memo cache unbounded by default");
        assert_eq!(c.route_cache, 0, "route cache off by default");
        assert_eq!(c.engine_shards, 16, "fixed machine-independent default");
        assert_eq!(c.engine_workers, 0, "0 = one worker per core");
        assert_eq!(c.engine_queue, 1024);
    }

    #[test]
    fn engine_builders() {
        let c = SystemConfig::default()
            .with_engine_shards(4)
            .with_engine_workers(2)
            .with_engine_queue(64);
        assert_eq!(c.engine_shards, 4);
        assert_eq!(c.engine_workers, 2);
        assert_eq!(c.engine_queue, 64);
    }

    #[test]
    #[should_panic(expected = "at least 1 shard")]
    fn zero_engine_shards_rejected() {
        SystemConfig::default().with_engine_shards(0);
    }

    #[test]
    #[should_panic(expected = "at least 1 query")]
    fn zero_engine_queue_rejected() {
        SystemConfig::default().with_engine_queue(0);
    }

    #[test]
    fn cache_builders() {
        let c = SystemConfig::default()
            .with_ident_cache_capacity(128)
            .with_route_cache(512);
        assert_eq!(c.ident_cache_capacity, 128);
        assert_eq!(c.route_cache, 512);
    }

    #[test]
    fn durability_builder() {
        let c = SystemConfig::default().with_durability(DurabilityConfig::default());
        assert_eq!(c.durability, Some(DurabilityConfig::default()));
    }

    #[test]
    fn replication_builder() {
        let c = SystemConfig::default().with_replication(3);
        assert_eq!(c.replication, 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_replication_rejected() {
        SystemConfig::default().with_replication(0);
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::default()
            .with_family(LshFamilyKind::Linear)
            .with_matching(MatchMeasure::Containment)
            .with_padding(0.2)
            .with_kl(10, 3)
            .with_seed(7)
            .with_local_index(true)
            .with_cache_on_miss(false);
        assert_eq!(c.family, LshFamilyKind::Linear);
        assert_eq!(c.matching, MatchMeasure::Containment);
        assert_eq!(c.padding, 0.2);
        assert_eq!((c.k, c.l), (10, 3));
        assert_eq!(c.seed, 7);
        assert!(c.use_local_index);
        assert!(!c.cache_on_miss);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_padding_rejected() {
        SystemConfig::default().with_padding(-0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        SystemConfig::default().with_kl(0, 5);
    }
}
