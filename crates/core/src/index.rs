//! A peer-local interval index — making the §5.3 extension real.
//!
//! §5.3 suggests that a contacted peer "build up an index over all the
//! partitions that get stored in various buckets" so a lookup can consider
//! every partition the peer holds, not just the one bucket the identifier
//! names. [`Peer::best_across_buckets`](crate::peer::Peer) realizes the
//! recall effect with a scan; this module provides the *index* — a static
//! interval structure over `(range.start, range.end)` pairs, rebuilt
//! incrementally, that answers "best containment match for Q" by touching
//! only candidates overlapping Q instead of every stored range.
//!
//! The structure is a sorted-by-start list with a prefix-maximum of ends
//! (a flattened interval tree): overlap candidates for `[qlo, qhi]` are a
//! contiguous prefix of the entries with `start ≤ qhi`, pruned by the
//! prefix maximum to skip runs that end before `qlo`.

use crate::bucket::Match;
use crate::config::MatchMeasure;
use ars_lsh::RangeSet;

/// One indexed entry: a stored partition's bounding interval plus its
/// full range.
#[derive(Debug, Clone)]
struct Entry {
    start: u32,
    /// Largest `end` among entries `0..=i` (prefix maximum) — the pruning
    /// key of the flattened interval tree.
    prefix_max_end: u32,
    range: RangeSet,
}

/// A static-plus-staging interval index over stored partition ranges.
///
/// Inserts go to a small staging vector; the sorted base is rebuilt when
/// staging outgrows a fraction of the base (amortized `O(log n)` per
/// insert). Queries search base (with interval pruning) plus staging
/// (scan).
#[derive(Debug, Clone, Default)]
pub struct IntervalIndex {
    base: Vec<Entry>,
    staging: Vec<RangeSet>,
}

impl IntervalIndex {
    /// An empty index.
    pub fn new() -> IntervalIndex {
        IntervalIndex::default()
    }

    /// Number of indexed ranges.
    pub fn len(&self) -> usize {
        self.base.len() + self.staging.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.staging.is_empty()
    }

    /// Insert a range (duplicates are the caller's concern; buckets
    /// already deduplicate).
    pub fn insert(&mut self, range: RangeSet) {
        debug_assert!(!range.is_empty());
        self.staging.push(range);
        if self.staging.len() * 8 > self.base.len().max(32) {
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        // The base is already sorted from the previous rebuild, so only
        // the (small) staging batch needs sorting; the two sorted runs are
        // then merged — `O(n + s·log s)` instead of re-sorting all
        // `n + s` entries — with the prefix maximum of ends recomputed in
        // the same pass. Ties keep base entries first, matching what a
        // stable sort of base-then-staging would produce.
        fn key(r: &RangeSet) -> (u32, u32) {
            (r.min_value().unwrap_or(0), r.max_value().unwrap_or(0))
        }
        let mut staged: Vec<RangeSet> = self.staging.drain(..).collect();
        staged.sort_by_key(key);
        let base = std::mem::take(&mut self.base);
        let mut merged: Vec<Entry> = Vec::with_capacity(base.len() + staged.len());
        let mut prefix_max = 0u32;
        let mut push = |range: RangeSet, merged: &mut Vec<Entry>| {
            let (start, end) = key(&range);
            prefix_max = prefix_max.max(end);
            merged.push(Entry {
                start,
                prefix_max_end: prefix_max,
                range,
            });
        };
        let mut base_it = base.into_iter().peekable();
        let mut staged_it = staged.into_iter().peekable();
        loop {
            match (base_it.peek(), staged_it.peek()) {
                (Some(b), Some(s)) => {
                    if key(&b.range) <= key(s) {
                        push(base_it.next().unwrap().range, &mut merged);
                    } else {
                        push(staged_it.next().unwrap(), &mut merged);
                    }
                }
                (Some(_), None) => push(base_it.next().unwrap().range, &mut merged),
                (None, Some(_)) => push(staged_it.next().unwrap(), &mut merged),
                (None, None) => break,
            }
        }
        self.base = merged;
    }

    /// Best match for `query` under `measure` among all indexed ranges
    /// whose bounding interval overlaps the query's. (For containment,
    /// only overlapping ranges can score above zero, so the result equals
    /// a full scan whenever any overlapping candidate exists; a non-
    /// overlapping "best" of score 0 is reported from the first stored
    /// range like the scan would.)
    pub fn best_match(&self, query: &RangeSet, measure: MatchMeasure) -> Option<Match> {
        if self.is_empty() {
            return None;
        }
        let qlo = query.min_value()?;
        let qhi = query.max_value()?;
        // Track the best candidate by reference; the winning range is
        // cloned exactly once, when the Match is built.
        fn consider<'a>(
            best: &mut Option<(&'a RangeSet, f64)>,
            query: &RangeSet,
            range: &'a RangeSet,
            measure: MatchMeasure,
        ) {
            let score = crate::bucket::score(query, range, measure);
            if best.is_none_or(|(_, s)| score > s) {
                *best = Some((range, score));
            }
        }
        let mut best: Option<(&RangeSet, f64)> = None;

        // Base: entries with start ≤ qhi form a prefix (sorted by start).
        let hi_idx = self.base.partition_point(|e| e.start <= qhi);
        // Walk backwards; stop when the prefix maximum of ends drops below
        // qlo — nothing earlier can overlap.
        for e in self.base[..hi_idx].iter().rev() {
            if e.prefix_max_end < qlo {
                break;
            }
            // This entry itself may still not overlap (prefix max can come
            // from an earlier entry); cheap bound check first.
            if e.range.max_value().unwrap_or(0) >= qlo {
                consider(&mut best, query, &e.range, measure);
            }
        }
        // Staging: plain scan.
        for r in &self.staging {
            if r.max_value().unwrap_or(0) >= qlo && r.min_value().unwrap_or(u32::MAX) <= qhi {
                consider(&mut best, query, r, measure);
            }
        }
        match best {
            Some((range, score)) => Some(Match {
                range: range.clone(),
                score,
            }),
            // Degenerate fallback: nothing overlapped — report a zero-score
            // candidate so behaviour matches the linear scan (which always
            // returns *some* match from a non-empty store).
            None => {
                let first = self
                    .base
                    .first()
                    .map(|e| &e.range)
                    .or(self.staging.first())?;
                Some(Match {
                    range: first.clone(),
                    score: 0.0,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::best_of;
    use ars_common::DetRng;

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = IntervalIndex::new();
        assert!(idx.best_match(&r(0, 10), MatchMeasure::Jaccard).is_none());
        assert!(idx.is_empty());
    }

    #[test]
    fn finds_best_overlapping_candidate() {
        let mut idx = IntervalIndex::new();
        idx.insert(r(0, 100));
        idx.insert(r(35, 65));
        idx.insert(r(200, 300));
        let m = idx.best_match(&r(40, 60), MatchMeasure::Jaccard).unwrap();
        assert_eq!(m.range, r(35, 65));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn no_overlap_reports_zero_score() {
        let mut idx = IntervalIndex::new();
        idx.insert(r(0, 10));
        let m = idx.best_match(&r(500, 600), MatchMeasure::Jaccard).unwrap();
        assert_eq!(m.score, 0.0);
    }

    #[test]
    fn matches_linear_scan_on_random_data() {
        // The index must agree with the brute-force best for the measures
        // where overlap determines the score (both of ours).
        let mut rng = DetRng::new(7);
        for measure in [MatchMeasure::Jaccard, MatchMeasure::Containment] {
            let mut idx = IntervalIndex::new();
            let mut all: Vec<RangeSet> = Vec::new();
            for _ in 0..400 {
                let lo = rng.gen_inclusive_u32(0, 950);
                let hi = lo + rng.gen_inclusive_u32(0, 50);
                let range = r(lo, hi);
                idx.insert(range.clone());
                all.push(range);
            }
            for _ in 0..200 {
                let lo = rng.gen_inclusive_u32(0, 950);
                let q = r(lo, lo + rng.gen_inclusive_u32(0, 50));
                let via_index = idx.best_match(&q, measure).unwrap();
                let via_scan = best_of(all.iter(), &q, measure).unwrap();
                assert_eq!(
                    via_index.score, via_scan.score,
                    "index and scan disagree for {q} under {measure:?}"
                );
            }
        }
    }

    /// The structural invariants every rebuild must restore: base sorted
    /// by (start, end) and `prefix_max_end` a running maximum of ends.
    fn assert_base_invariants(idx: &IntervalIndex) {
        let mut prev_key = (0u32, 0u32);
        let mut prefix_max = 0u32;
        for e in &idx.base {
            let k = (
                e.range.min_value().unwrap_or(0),
                e.range.max_value().unwrap_or(0),
            );
            assert!(k >= prev_key, "base not sorted: {k:?} after {prev_key:?}");
            assert_eq!(e.start, k.0);
            prefix_max = prefix_max.max(k.1);
            assert_eq!(e.prefix_max_end, prefix_max, "prefix max broken at {k:?}");
            prev_key = k;
        }
    }

    #[test]
    fn staging_then_rebuild_consistent() {
        let mut idx = IntervalIndex::new();
        // Force multiple rebuild cycles and query between inserts. Widths
        // vary (including duplicates and nested intervals) so the merge
        // path exercises ties on `start` resolved by `end`.
        let mut rng = DetRng::new(3);
        let mut all = Vec::new();
        for i in 0..300 {
            let lo = rng.gen_inclusive_u32(0, 900);
            let range = r(lo, lo + 10 + (i % 4) * 20);
            idx.insert(range.clone());
            all.push(range);
            if i % 37 == 0 {
                let q = r(450, 520);
                let via_index = idx.best_match(&q, MatchMeasure::Containment).unwrap();
                let via_scan = best_of(all.iter(), &q, MatchMeasure::Containment).unwrap();
                assert_eq!(via_index.score, via_scan.score);
                assert_base_invariants(&idx);
            }
        }
        assert_base_invariants(&idx);
        assert_eq!(idx.len(), 300);
        // Every stored range answers itself exactly under containment.
        for q in all.iter().take(40) {
            let m = idx.best_match(q, MatchMeasure::Containment).unwrap();
            assert_eq!(m.score, 1.0, "self-query for {q} not fully contained");
        }
    }

    #[test]
    fn merge_rebuild_matches_full_resort() {
        // Drive one index through incremental merge rebuilds and compare
        // against an index built in a single batch (one big rebuild):
        // identical base order, keys, and prefix maxima.
        let mut rng = DetRng::new(11);
        let ranges: Vec<RangeSet> = (0..500)
            .map(|i| {
                let lo = rng.gen_inclusive_u32(0, 900);
                r(lo, lo + (i % 5) * 17)
            })
            .collect();
        let mut incremental = IntervalIndex::new();
        for range in &ranges {
            incremental.insert(range.clone());
        }
        let mut batch = IntervalIndex::new();
        batch.staging = ranges.clone();
        batch.rebuild();
        incremental.rebuild(); // flush any trailing staging
        assert_eq!(incremental.base.len(), batch.base.len());
        for (a, b) in incremental.base.iter().zip(&batch.base) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.prefix_max_end, b.prefix_max_end);
            assert_eq!(a.range, b.range);
        }
        assert_base_invariants(&incremental);
    }
}
