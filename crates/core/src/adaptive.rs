//! Adaptive query padding — the paper's closing future-work item:
//! "In future, we will explore dynamically adjusting padding for better
//! overall performance" (§5.2).
//!
//! Fixed padding trades the two sides of Fig. 10: more padding means more
//! queries fully contained in cached partitions, but a padded range that
//! *misses* hurts recall for the queries it would otherwise have matched.
//! [`AdaptivePadding`] is a small additive-increase / multiplicative-
//! decrease controller over a sliding window: when too few recent queries
//! are answered completely it pads more; when padding stops paying for
//! itself it backs off.

use crate::network::{QueryOutcome, RangeSelectNetwork};
use ars_lsh::RangeSet;
use std::collections::VecDeque;

/// Controller state for dynamic padding.
#[derive(Debug, Clone)]
pub struct AdaptivePadding {
    current: f64,
    min: f64,
    max: f64,
    /// Additive increase step.
    step: f64,
    /// Target fraction of recent queries answered completely.
    target_complete: f64,
    window: VecDeque<bool>,
    window_len: usize,
}

impl Default for AdaptivePadding {
    fn default() -> AdaptivePadding {
        AdaptivePadding::new(0.0, 0.5, 0.05, 0.7, 50)
    }
}

impl AdaptivePadding {
    /// Create a controller.
    ///
    /// * `min`/`max` — padding bounds;
    /// * `step` — additive increase per under-target window;
    /// * `target_complete` — desired fraction of fully-answered queries;
    /// * `window_len` — sliding window size.
    ///
    /// # Panics
    /// Panics on inconsistent bounds or an empty window.
    pub fn new(
        min: f64,
        max: f64,
        step: f64,
        target_complete: f64,
        window_len: usize,
    ) -> AdaptivePadding {
        assert!(min >= 0.0 && max >= min, "invalid padding bounds");
        assert!(step > 0.0, "step must be positive");
        assert!((0.0..=1.0).contains(&target_complete), "invalid target");
        assert!(window_len > 0, "window must be non-empty");
        AdaptivePadding {
            current: min,
            min,
            max,
            step,
            target_complete,
            window: VecDeque::with_capacity(window_len),
            window_len,
        }
    }

    /// The padding the next query should use.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Fraction of the current window answered completely.
    pub fn window_complete_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().filter(|&&b| b).count() as f64 / self.window.len() as f64
    }

    /// Record a query outcome and adjust.
    pub fn observe(&mut self, outcome: &QueryOutcome) {
        if self.window.len() == self.window_len {
            self.window.pop_front();
        }
        self.window.push_back(outcome.recall >= 1.0);
        if self.window.len() < self.window_len {
            return; // not enough signal yet
        }
        let rate = self.window_complete_rate();
        if rate < self.target_complete {
            // Under target: pad more (additive increase).
            self.current = (self.current + self.step).min(self.max);
        } else {
            // Over target: padding is paying — decay gently toward min so
            // over-padding does not linger (multiplicative decrease).
            self.current = (self.current * 0.9).max(self.min);
        }
    }
}

/// A querying client that drives a network with adaptive padding.
pub struct AdaptiveClient<'a> {
    net: &'a mut RangeSelectNetwork,
    /// The controller (public for inspection in experiments).
    pub controller: AdaptivePadding,
}

impl<'a> AdaptiveClient<'a> {
    /// Wrap a network with the default controller.
    pub fn new(net: &'a mut RangeSelectNetwork) -> AdaptiveClient<'a> {
        AdaptiveClient {
            net,
            controller: AdaptivePadding::default(),
        }
    }

    /// Wrap with an explicit controller.
    pub fn with_controller(
        net: &'a mut RangeSelectNetwork,
        controller: AdaptivePadding,
    ) -> AdaptiveClient<'a> {
        AdaptiveClient { net, controller }
    }

    /// Query with the controller's current padding, then update it.
    pub fn query(&mut self, q: &RangeSet) -> QueryOutcome {
        let padding = self.controller.current();
        let out = self.net.query_padded(q, padding);
        self.controller.observe(&out);
        out
    }

    /// Run a trace, returning outcomes.
    pub fn run_trace<'q, I: IntoIterator<Item = &'q RangeSet>>(
        &mut self,
        queries: I,
    ) -> Vec<QueryOutcome> {
        queries.into_iter().map(|q| self.query(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MatchMeasure, SystemConfig};
    use crate::recall::pct_fully_answered;
    use ars_workload::uniform_trace;

    #[test]
    fn controller_bounds_respected() {
        let mut c = AdaptivePadding::new(0.0, 0.3, 0.1, 0.99, 2);
        // Feed misses: padding must rise but never exceed max.
        let miss = QueryOutcome {
            query: RangeSet::interval(0, 1),
            best_match: None,
            similarity: 0.0,
            recall: 0.0,
            exact: false,
            stored: true,
            hops: vec![],
            identifiers: vec![],
            peers_contacted: 0,
            attempts: 0,
            fell_back_to_source: false,
            partition_degraded: false,
        };
        for _ in 0..20 {
            c.observe(&miss);
            assert!(c.current() <= 0.3 + 1e-12);
            assert!(c.current() >= 0.0);
        }
        assert!((c.current() - 0.3).abs() < 1e-9, "saturates at max");
    }

    #[test]
    fn controller_backs_off_when_target_met() {
        let mut c = AdaptivePadding::new(0.0, 0.5, 0.1, 0.5, 2);
        let hit = QueryOutcome {
            query: RangeSet::interval(0, 1),
            best_match: Some(RangeSet::interval(0, 1)),
            similarity: 1.0,
            recall: 1.0,
            exact: true,
            stored: false,
            hops: vec![],
            identifiers: vec![],
            peers_contacted: 0,
            attempts: 0,
            fell_back_to_source: false,
            partition_degraded: false,
        };
        // Drive up first.
        let miss = QueryOutcome {
            recall: 0.0,
            ..hit.clone()
        };
        for _ in 0..10 {
            c.observe(&miss);
        }
        let high = c.current();
        assert!(high > 0.0);
        for _ in 0..50 {
            c.observe(&hit);
        }
        assert!(c.current() < high, "must decay once target is met");
    }

    #[test]
    #[should_panic(expected = "invalid padding bounds")]
    fn invalid_bounds_rejected() {
        AdaptivePadding::new(0.5, 0.1, 0.1, 0.5, 10);
    }

    #[test]
    fn adaptive_competes_with_fixed_padding() {
        // On the paper's uniform workload, adaptive padding should land in
        // the same quality regime as a reasonable fixed setting — without
        // having been told the right value.
        let trace = uniform_trace(2_000, 0, 1000, 77);
        let config = SystemConfig::default()
            .with_matching(MatchMeasure::Containment)
            .with_seed(77);

        let mut fixed_net = RangeSelectNetwork::new(200, config.clone());
        let fixed_outs: Vec<QueryOutcome> = trace
            .queries()
            .iter()
            .map(|q| fixed_net.query_padded(q, 0.2))
            .collect();

        let mut adaptive_net = RangeSelectNetwork::new(200, config);
        let mut client = AdaptiveClient::new(&mut adaptive_net);
        let adaptive_outs = client.run_trace(trace.queries());

        let cut = trace.len() / 5;
        let fixed_pct = pct_fully_answered(&fixed_outs[cut..]);
        let adaptive_pct = pct_fully_answered(&adaptive_outs[cut..]);
        assert!(
            adaptive_pct > fixed_pct * 0.75,
            "adaptive ({adaptive_pct:.1}%) too far below fixed 20% ({fixed_pct:.1}%)"
        );
        // And the controller stayed within bounds.
        assert!(client.controller.current() <= 0.5);
    }
}
