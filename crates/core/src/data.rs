//! The full §2 data-sharing architecture: relational partitions cached in
//! the P2P system and served to query plans.
//!
//! [`DataNetwork`] combines, per (relation, attribute) pair, the range
//! identifier machinery of [`crate::RangeSelectNetwork`] with a payload
//! store holding the actual tuples of each cached partition. It implements
//! [`ars_relation::exec::LeafSource`], so a planned SQL query executes
//! with its selection leaves resolved through the P2P cache: on a usable
//! cached match the tuples come from a peer; otherwise they come from the
//! base relation at the source (and the partition is cached for the next
//! query) — exactly the workflow of the paper's Figure 2.

use crate::config::SystemConfig;
use crate::network::RangeSelectNetwork;
use ars_common::FxHashMap;
use ars_lsh::RangeSet;
use ars_relation::exec::{BaseTables, ExecError, LeafSource};
use ars_relation::{HorizontalPartition, Predicate, Relation};
use std::collections::BTreeMap;

/// What a leaf fetch actually did (for experiment accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Served entirely from a cached partition.
    Cache,
    /// Served from the base relation at the source (and cached).
    Source,
    /// Served from a cached partition that only partially covered the
    /// query (partial answers accepted by configuration).
    PartialCache,
    /// Overlap served from a cached partition, the uncovered remainder
    /// fetched from the source (residual fetching).
    Residual,
}

/// How to handle a cached match that only partially covers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartialPolicy {
    /// Ignore partial matches; go to the source for the whole range
    /// (always returns complete answers).
    #[default]
    SourceOnPartial,
    /// Return the covered part only — §5.2: "the system can present the
    /// user the part of the answer it is able to find fast".
    AcceptPartial,
    /// Serve the overlap from the cache and fetch only the *residual*
    /// `query \ cached` from the source — complete answers at reduced
    /// source load (our extension; enabled by `RangeSet::difference`).
    Residual,
}

/// Counters for leaf fetches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Leaves served from cache with full coverage.
    pub cache_hits: u64,
    /// Leaves that had to go to the source.
    pub source_fetches: u64,
    /// Leaves served with partial coverage.
    pub partial_hits: u64,
    /// Leaves served by cache + residual source fetch.
    pub residual_hits: u64,
    /// Attribute values served out of cached partitions (all modes).
    pub values_from_cache: u64,
    /// Attribute values that had to come from the source (all modes).
    pub values_from_source: u64,
}

/// The data-sharing P2P system of §2.
pub struct DataNetwork {
    n_peers: usize,
    config: SystemConfig,
    /// Per-(relation, attribute): the identifier/bucket machinery. Each
    /// attribute domain gets hash groups derived from its own seed (part
    /// of the global schema all peers share), over the same peer ring.
    nets: BTreeMap<(String, String), RangeSelectNetwork>,
    /// Cached partition payloads, keyed by the defining triple. (Placement
    /// follows the range identifiers; the payload map is the union of all
    /// peers' tuple stores.)
    payloads: FxHashMap<(String, String, RangeSet), HorizontalPartition>,
    /// The data sources (peers holding base relations, known to everyone).
    sources: BaseTables,
    /// Policy for partially-covering cached matches.
    pub partial_policy: PartialPolicy,
    /// Fetch accounting.
    pub stats: FetchStats,
}

impl DataNetwork {
    /// Create the system: `n_peers` cache peers plus the given sources.
    pub fn new(n_peers: usize, config: SystemConfig, sources: BaseTables) -> DataNetwork {
        DataNetwork {
            n_peers,
            config,
            nets: BTreeMap::new(),
            payloads: FxHashMap::default(),
            sources,
            partial_policy: PartialPolicy::default(),
            stats: FetchStats::default(),
        }
    }

    /// The identifier network for one attribute, created on first use with
    /// a seed derived from the attribute name (all peers derive the same
    /// functions from the global schema).
    fn net_for(&mut self, relation: &str, attr: &str) -> &mut RangeSelectNetwork {
        let key = (relation.to_string(), attr.to_string());
        let (n_peers, config) = (self.n_peers, self.config.clone());
        self.nets.entry(key).or_insert_with(|| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in relation.bytes().chain([0u8]).chain(attr.bytes()) {
                h = (h ^ b as u64).wrapping_mul(0x1_0000_01b3);
            }
            let seed = config.seed ^ h;
            RangeSelectNetwork::new(n_peers, config.with_seed(seed))
        })
    }

    /// Total partitions cached across all attributes.
    pub fn cached_partitions(&self) -> usize {
        self.payloads.len()
    }

    /// Direct access to one attribute's identifier network (after at least
    /// one query has touched it).
    pub fn attribute_network(&self, relation: &str, attr: &str) -> Option<&RangeSelectNetwork> {
        self.nets.get(&(relation.to_string(), attr.to_string()))
    }

    /// Fetch one partition through the P2P system (the paper's Figure 2
    /// flow for a single leaf).
    fn fetch_partition(
        &mut self,
        relation: &str,
        attr: &str,
        range: &RangeSet,
    ) -> Result<(HorizontalPartition, FetchOutcome), ExecError> {
        let policy = self.partial_policy;
        let outcome = self.net_for(relation, attr).query(range);
        if let Some(matched) = &outcome.best_match {
            let key = (relation.to_string(), attr.to_string(), matched.clone());
            if let Some(part) = self.payloads.get(&key) {
                if outcome.recall >= 1.0 {
                    // Fully covered: refine to exactly the requested range.
                    let refined = part.refine(range).ok_or_else(|| {
                        ExecError::SourceUnavailable(format!(
                            "cached partition {matched} does not cover {range}"
                        ))
                    })?;
                    self.stats.values_from_cache += range.len();
                    return Ok((refined, FetchOutcome::Cache));
                }
                let overlap = range.intersection(part.range());
                match policy {
                    PartialPolicy::AcceptPartial if !overlap.is_empty() => {
                        // Partial answer: the covered part only.
                        if let Some(partial) = part.refine(&overlap) {
                            self.stats.values_from_cache += overlap.len();
                            return Ok((partial, FetchOutcome::PartialCache));
                        }
                    }
                    PartialPolicy::Residual if !overlap.is_empty() => {
                        // Serve the overlap from cache, fetch only the
                        // uncovered remainder from the source.
                        if let Some(partial) = part.refine(&overlap) {
                            let residual = range.difference(part.range());
                            debug_assert_eq!(overlap.len() + residual.len(), range.len());
                            let base = self
                                .sources
                                .get(relation)
                                .ok_or_else(|| ExecError::UnknownRelation(relation.to_string()))?;
                            let rest = HorizontalPartition::select_from(base, attr, &residual);
                            let schema = partial.schema().clone();
                            let mut tuples = partial.tuples().to_vec();
                            tuples.extend(rest.tuples().iter().cloned());
                            let combined = HorizontalPartition::from_parts(
                                relation,
                                attr,
                                range.clone(),
                                schema,
                                tuples,
                            );
                            self.stats.values_from_cache += overlap.len();
                            self.stats.values_from_source += residual.len();
                            return Ok((combined, FetchOutcome::Residual));
                        }
                    }
                    _ => {}
                }
            }
        }
        // Go to the source; the identifier layer already cached the query
        // range on miss (cache_on_miss), so store the payload alongside.
        let base = self
            .sources
            .get(relation)
            .ok_or_else(|| ExecError::UnknownRelation(relation.to_string()))?;
        let hashed_range = if self.config.padding > 0.0 {
            range.pad(self.config.padding)
        } else {
            range.clone()
        };
        let part = HorizontalPartition::select_from(base, attr, &hashed_range);
        if self.config.cache_on_miss {
            self.payloads.insert(
                (relation.to_string(), attr.to_string(), hashed_range),
                part.clone(),
            );
        }
        let answer = part
            .refine(range)
            .expect("padded partition must cover the original range");
        self.stats.values_from_source += range.len();
        Ok((answer, FetchOutcome::Source))
    }
}

impl LeafSource for DataNetwork {
    /// Resolve a leaf: route its single range predicate through the P2P
    /// cache, then apply any remaining predicates (e.g. string equalities)
    /// locally.
    fn fetch(&mut self, relation: &str, predicates: &[Predicate]) -> Result<Relation, ExecError> {
        // The paper's restriction is one ranged attribute per select; when
        // a future multi-attribute query pushes several, locate by the
        // most *selective* one (fewest values — smallest partition to
        // ship) and filter the rest locally.
        let ranged = predicates
            .iter()
            .filter_map(|p| p.range_set().map(|rs| (p.attr().to_string(), rs)))
            .min_by_key(|(_, rs)| rs.len());
        let (fetched, outcome) = match ranged {
            Some((attr, range)) => {
                let (part, outcome) = self.fetch_partition(relation, &attr, &range)?;
                (part.as_relation(), outcome)
            }
            None => {
                // No ranged predicate (e.g. a pure string-equality leaf):
                // this leaf cannot be located by range hashing; go to the
                // source directly.
                let base = self
                    .sources
                    .get(relation)
                    .ok_or_else(|| ExecError::UnknownRelation(relation.to_string()))?;
                (base.clone(), FetchOutcome::Source)
            }
        };
        match outcome {
            FetchOutcome::Cache => self.stats.cache_hits += 1,
            FetchOutcome::Source => self.stats.source_fetches += 1,
            FetchOutcome::PartialCache => self.stats.partial_hits += 1,
            FetchOutcome::Residual => self.stats.residual_hits += 1,
        }
        // Apply all predicates locally (idempotent for the ranged one).
        let schema = fetched.schema().clone();
        let tuples = fetched
            .into_tuples()
            .into_iter()
            .filter(|t| predicates.iter().all(|p| p.matches(&schema, t)))
            .collect();
        Ok(Relation::new(schema, tuples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_relation::schema::medical;
    use ars_relation::Value;

    fn sources() -> BaseTables {
        let mut t = BaseTables::new();
        t.register(Relation::new(
            medical::patient(),
            (0..300u32)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::from(format!("p{i}")),
                        Value::Int(20 + (i % 60)),
                    ]
                })
                .collect(),
        ));
        t
    }

    fn leaf(lo: u32, hi: u32) -> Vec<Predicate> {
        vec![Predicate::range("age", lo, hi)]
    }

    #[test]
    fn first_fetch_goes_to_source_second_hits_cache() {
        let mut net = DataNetwork::new(40, SystemConfig::default().with_seed(4), sources());
        let r1 = net.fetch("Patient", &leaf(30, 50)).unwrap();
        assert_eq!(net.stats.source_fetches, 1);
        assert_eq!(net.stats.cache_hits, 0);
        let r2 = net.fetch("Patient", &leaf(30, 50)).unwrap();
        assert_eq!(net.stats.cache_hits, 1);
        assert_eq!(r1, r2);
        assert!(!r1.is_empty());
        assert_eq!(net.cached_partitions(), 1);
    }

    #[test]
    fn cached_answers_match_source_answers() {
        let mut net = DataNetwork::new(40, SystemConfig::default().with_seed(9), sources());
        let direct = {
            let mut s = sources();
            s.fetch("Patient", &leaf(25, 45)).unwrap()
        };
        net.fetch("Patient", &leaf(25, 45)).unwrap();
        let via_cache = net.fetch("Patient", &leaf(25, 45)).unwrap();
        assert_eq!(via_cache.len(), direct.len());
    }

    #[test]
    fn contained_query_served_from_broader_cached_partition() {
        use crate::config::MatchMeasure;
        // Cache [20,70]; then ask for [30,50] with containment matching —
        // the broader partition fully covers it.
        let config = SystemConfig::default()
            .with_matching(MatchMeasure::Containment)
            .with_seed(2);
        let mut net = DataNetwork::new(40, config, sources());
        net.fetch("Patient", &leaf(20, 70)).unwrap();
        let narrow = net.fetch("Patient", &leaf(30, 50)).unwrap();
        // Whether it hit depends on LSH collision; with high containment
        // similarity it usually does, but correctness must hold either way:
        let direct = {
            let mut s = sources();
            s.fetch("Patient", &leaf(30, 50)).unwrap()
        };
        assert_eq!(narrow.len(), direct.len());
    }

    #[test]
    fn partial_answers_when_enabled() {
        use crate::config::MatchMeasure;
        let config = SystemConfig::default()
            .with_matching(MatchMeasure::Containment)
            .with_seed(6);
        let mut net = DataNetwork::new(40, config, sources());
        net.partial_policy = PartialPolicy::AcceptPartial;
        net.fetch("Patient", &leaf(30, 49)).unwrap();
        // [30,50] overlaps the cached [30,49] but is not contained.
        let partial_or_full = net.fetch("Patient", &leaf(30, 50)).unwrap();
        assert!(!partial_or_full.is_empty());
        // If it was served partially, tuples must still satisfy the query
        // predicate.
        let idx = partial_or_full.schema().index_of("age").unwrap();
        for t in partial_or_full.tuples() {
            let a = t[idx].as_ordinal().unwrap();
            assert!((30..=50).contains(&a));
        }
    }

    #[test]
    fn residual_policy_returns_complete_answers_at_reduced_source_load() {
        use crate::config::MatchMeasure;
        let config = SystemConfig::default()
            .with_matching(MatchMeasure::Containment)
            .with_seed(6);
        let mut net = DataNetwork::new(40, config, sources());
        net.partial_policy = PartialPolicy::Residual;
        // Cache ages [30, 49] (120 values per... range len = 20).
        net.fetch("Patient", &leaf(30, 49)).unwrap();
        let from_source_before = net.stats.values_from_source;
        // Ask for [30, 55]: the overlap [30, 49] can come from cache, only
        // [50, 55] from the source — and the answer must be complete.
        let r = net.fetch("Patient", &leaf(30, 55)).unwrap();
        let direct = {
            let mut s = sources();
            s.fetch("Patient", &leaf(30, 55)).unwrap()
        };
        assert_eq!(r.len(), direct.len(), "residual answers must be complete");
        if net.stats.residual_hits > 0 {
            // When the LSH match fired, only the residual 6 values hit the
            // source.
            assert_eq!(net.stats.values_from_source - from_source_before, 6);
            assert!(net.stats.values_from_cache >= 20);
        }
    }

    #[test]
    fn unknown_relation_is_error() {
        let mut net = DataNetwork::new(10, SystemConfig::default(), sources());
        assert!(matches!(
            net.fetch("Nope", &leaf(0, 1)),
            Err(ExecError::UnknownRelation(_))
        ));
    }

    #[test]
    fn string_only_leaf_goes_to_source() {
        let mut net = DataNetwork::new(10, SystemConfig::default(), sources());
        let preds = vec![Predicate::eq("name", "p5")];
        let r = net.fetch("Patient", &preds).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(net.stats.source_fetches, 1);
    }

    #[test]
    fn multi_attribute_leaf_locates_by_most_selective_range() {
        // A leaf with two ranged predicates (a step toward the paper's
        // multi-attribute future work): the narrow patient_id range [5,9]
        // should be the located partition, with the broad age range
        // filtered locally.
        let mut net = DataNetwork::new(20, SystemConfig::default().with_seed(8), sources());
        let preds = vec![
            Predicate::range("age", 0, 1000),     // broad
            Predicate::range("patient_id", 5, 9), // selective
        ];
        let r = net.fetch("Patient", &preds).unwrap();
        assert_eq!(r.len(), 5);
        // The cached partition is the selective one.
        assert!(net.attribute_network("Patient", "patient_id").is_some());
        assert!(net.attribute_network("Patient", "age").is_none());
        // Both predicates hold on the result.
        let id_idx = r.schema().index_of("patient_id").unwrap();
        for t in r.tuples() {
            let v = t[id_idx].as_ordinal().unwrap();
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn different_attributes_use_independent_identifier_spaces() {
        let mut net = DataNetwork::new(20, SystemConfig::default().with_seed(3), sources());
        net.fetch("Patient", &leaf(30, 50)).unwrap();
        let by_id = vec![Predicate::range("patient_id", 30, 50)];
        net.fetch("Patient", &by_id).unwrap();
        assert!(net.attribute_network("Patient", "age").is_some());
        assert!(net.attribute_network("Patient", "patient_id").is_some());
        // Same numeric range, different attribute → distinct cache entries.
        assert_eq!(net.cached_partitions(), 2);
        assert_eq!(net.stats.source_fetches, 2);
    }
}
