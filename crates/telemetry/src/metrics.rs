//! The metric registry: counters, gauges, and log₂-bucketed histograms.
//!
//! All storage is `BTreeMap`-keyed by the metric's static name, so every
//! snapshot and export lists metrics in a stable (lexicographic) order —
//! part of the seed-stability contract of the recording sink.

use std::collections::BTreeMap;

/// Number of log₂ buckets in a [`Hist`]: bucket `i` counts values whose
/// bit length is `i` (bucket 0 holds the value 0), so `u64::MAX` lands in
/// bucket 64.
pub const HIST_BUCKETS: usize = 65;

/// A histogram over `u64` samples with log₂ buckets plus exact
/// count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

/// Bucket index of a value: its bit length (0 for the value 0).
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Hist {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]` reconstructed from the log₂
    /// buckets: the bucket holding the rank-`⌈q·count⌉` sample is located
    /// exactly, then the value is linearly interpolated across the
    /// bucket's span `[2^(i−1), 2^i − 1]` by rank position and clamped to
    /// the exact observed `[min, max]`. The result is within one bucket
    /// (a factor of 2) of the true quantile — tight enough for hedge-delay
    /// derivation and tail reporting, at 65 words of state.
    ///
    /// Returns 0 when the histogram is empty.
    ///
    /// # Panics
    /// Panics unless `0 ≤ q ≤ 1`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                if i == 0 {
                    return 0; // bucket 0 holds only the value 0
                }
                let lo = 1u64 << (i - 1);
                let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                let into = (rank - (seen - c)) as f64 / c as f64;
                let est = lo as f64 + into * (hi - lo) as f64;
                return (est as u64).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Approximate median (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Approximate 90th percentile (see [`Self::quantile`]).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Approximate 99th percentile (see [`Self::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(bucket_index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// The mutable metric store inside a recording sink.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
}

impl Registry {
    /// Add `delta` to the monotonic counter `name` (created at 0).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Record `value` into the histogram `name` (created empty).
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().record(value);
    }

    /// Freeze the registry into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// Reset all metrics (the recording sink's `reset`).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }
}

/// An immutable, stably-ordered view of every metric at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

impl MetricsSnapshot {
    /// Counter value (0 when the counter never moved).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if any sample was recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// All counters, lexicographic by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, lexicographic by name.
    pub fn gauges(&self) -> &BTreeMap<String, u64> {
        &self.gauges
    }

    /// All histograms, lexicographic by name.
    pub fn hists(&self) -> &BTreeMap<String, Hist> {
        &self.hists
    }

    /// True when no metric of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Total overlay messages the recorded workload spent, derived from
    /// the standard core/resilient instrumentation: routed lookup hops
    /// (`core.lookup.hops` histogram sum on the static paths,
    /// `resilient.lookup.hops` counter under churn), layered-placement
    /// successor-walk steps (`core.walk.steps`), backup-route hops spent
    /// hedging or short-circuiting slow peers (`resilient.hedge_hops`),
    /// and fault-detection probe pings (`resilient.probes`). Multi-probe
    /// bucket checks are *not* messages — they happen locally at peers a
    /// query already visited — and are deliberately absent.
    ///
    /// Bench binaries should use this (or [`Self::messages_per_query`])
    /// instead of re-deriving the sum by hand from raw counters.
    pub fn total_messages(&self) -> u64 {
        self.hist("core.lookup.hops").map(|h| h.sum).unwrap_or(0)
            + self.counter("core.walk.steps")
            + self.counter("resilient.lookup.hops")
            + self.counter("resilient.hedge_hops")
            + self.counter("resilient.probes")
    }

    /// Overlay messages per executed query: [`Self::total_messages`] over
    /// the queries recorded on either query path (`core.queries`,
    /// `resilient.queries`). `0.0` before any query ran.
    pub fn messages_per_query(&self) -> f64 {
        let queries = self.counter("core.queries") + self.counter("resilient.queries");
        if queries == 0 {
            0.0
        } else {
            self.total_messages() as f64 / queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_per_query_derives_from_standard_instrumentation() {
        let mut r = Registry::default();
        r.record("core.lookup.hops", 3);
        r.record("core.lookup.hops", 4);
        r.counter_add("core.walk.steps", 5);
        r.counter_add("resilient.lookup.hops", 2);
        r.counter_add("resilient.hedge_hops", 1);
        r.counter_add("resilient.probes", 6);
        r.counter_add("core.queries", 2);
        r.counter_add("resilient.queries", 1);
        // Local probe checks are not messages and must not count.
        r.counter_add("core.probe.checks", 100);
        let s = r.snapshot();
        assert_eq!(s.total_messages(), 3 + 4 + 5 + 2 + 1 + 6);
        assert!((s.messages_per_query() - 21.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn messages_per_query_zero_without_queries() {
        let s = Registry::default().snapshot();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.messages_per_query(), 0.0);
    }

    #[test]
    fn counter_accumulates() {
        let mut r = Registry::default();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("b"), 1);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn gauge_last_write_wins() {
        let mut r = Registry::default();
        r.gauge_set("g", 10);
        r.gauge_set("g", 7);
        assert_eq!(r.snapshot().gauge("g"), Some(7));
        assert_eq!(r.snapshot().gauge("missing"), None);
    }

    #[test]
    fn hist_tracks_shape() {
        let mut r = Registry::default();
        for v in [0u64, 1, 2, 3, 1000] {
            r.record("h", v);
        }
        let s = r.snapshot();
        let h = s.hist("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        // 0 → bucket 0, 1 → 1, 2..3 → 2, 1000 → 10.
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn empty_hist_mean_is_zero() {
        assert_eq!(Hist::default().mean(), 0.0);
    }

    #[test]
    fn empty_hist_quantiles_are_zero() {
        let h = Hist::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        // min/max clamping makes a one-sample histogram exact at every q.
        let mut h = Hist::default();
        h.record(137);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 137, "q={q}");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_accurate() {
        // 100 samples 1..=100: true p50 = 50, p90 = 90, p99 = 99. The
        // log₂ reconstruction must land within the true value's bucket
        // (a factor-of-2 band) and be monotone in q.
        let mut h = Hist::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotone");
        assert!((32..=63).contains(&p50), "p50 {p50} outside bucket of 50");
        assert!((64..=100).contains(&p90), "p90 {p90} outside bucket of 90");
        assert!((64..=100).contains(&p99), "p99 {p99} outside bucket of 99");
        assert_eq!(h.quantile(1.0), 100, "q=1 clamps to the exact max");
        assert_eq!(h.quantile(0.0), 1, "q=0 clamps to the exact min");
    }

    #[test]
    fn bimodal_hist_separates_modes() {
        // 90 fast samples at 100 and 10 slow ones at 10_000: p50 must
        // report the fast mode, p99 the slow one — the property hedge
        // delays rely on.
        let mut h = Hist::default();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        assert!(h.p50() < 256, "p50 {} must sit in the fast mode", h.p50());
        assert!(
            h.p99() >= 8_192,
            "p99 {} must sit in the slow mode",
            h.p99()
        );
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_validates_q() {
        let _ = Hist::default().quantile(1.5);
    }

    #[test]
    fn clear_empties_everything() {
        let mut r = Registry::default();
        r.counter_add("a", 1);
        r.gauge_set("g", 1);
        r.record("h", 1);
        assert!(!r.snapshot().is_empty());
        r.clear();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn snapshot_order_is_lexicographic() {
        let mut r = Registry::default();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        r.counter_add("m", 1);
        let snap = r.snapshot();
        let names: Vec<&String> = snap.counters().keys().collect();
        assert_eq!(names, ["a", "m", "z"]);
    }
}
