//! The metric registry: counters, gauges, and log₂-bucketed histograms.
//!
//! All storage is `BTreeMap`-keyed by the metric's static name, so every
//! snapshot and export lists metrics in a stable (lexicographic) order —
//! part of the seed-stability contract of the recording sink.

use std::collections::BTreeMap;

/// Number of log₂ buckets in a [`Hist`]: bucket `i` counts values whose
/// bit length is `i` (bucket 0 holds the value 0), so `u64::MAX` lands in
/// bucket 64.
pub const HIST_BUCKETS: usize = 65;

/// A histogram over `u64` samples with log₂ buckets plus exact
/// count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

/// Bucket index of a value: its bit length (0 for the value 0).
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Hist {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(bucket_index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// The mutable metric store inside a recording sink.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
}

impl Registry {
    /// Add `delta` to the monotonic counter `name` (created at 0).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Record `value` into the histogram `name` (created empty).
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().record(value);
    }

    /// Freeze the registry into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// Reset all metrics (the recording sink's `reset`).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }
}

/// An immutable, stably-ordered view of every metric at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

impl MetricsSnapshot {
    /// Counter value (0 when the counter never moved).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if any sample was recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// All counters, lexicographic by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, lexicographic by name.
    pub fn gauges(&self) -> &BTreeMap<String, u64> {
        &self.gauges
    }

    /// All histograms, lexicographic by name.
    pub fn hists(&self) -> &BTreeMap<String, Hist> {
        &self.hists
    }

    /// True when no metric of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut r = Registry::default();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("b"), 1);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn gauge_last_write_wins() {
        let mut r = Registry::default();
        r.gauge_set("g", 10);
        r.gauge_set("g", 7);
        assert_eq!(r.snapshot().gauge("g"), Some(7));
        assert_eq!(r.snapshot().gauge("missing"), None);
    }

    #[test]
    fn hist_tracks_shape() {
        let mut r = Registry::default();
        for v in [0u64, 1, 2, 3, 1000] {
            r.record("h", v);
        }
        let s = r.snapshot();
        let h = s.hist("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        // 0 → bucket 0, 1 → 1, 2..3 → 2, 1000 → 10.
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn empty_hist_mean_is_zero() {
        assert_eq!(Hist::default().mean(), 0.0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut r = Registry::default();
        r.counter_add("a", 1);
        r.gauge_set("g", 1);
        r.record("h", 1);
        assert!(!r.snapshot().is_empty());
        r.clear();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn snapshot_order_is_lexicographic() {
        let mut r = Registry::default();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        r.counter_add("m", 1);
        let snap = r.snapshot();
        let names: Vec<&String> = snap.counters().keys().collect();
        assert_eq!(names, ["a", "m", "z"]);
    }
}
