//! The [`Telemetry`] handle and its two sinks.
//!
//! `Telemetry` is the object the instrumented crates hold. It is either
//!
//! * the **no-op sink** ([`Telemetry::noop`], also `Default`) — the handle
//!   carries `None` and every instrumentation call is a single branch on
//!   that option, so the hot paths pay nothing measurable (the
//!   `telemetry-overhead` CI job pins this below 5% on the min-hash
//!   kernel path); or
//! * the **recording sink** ([`Telemetry::recording`]) — a shared,
//!   mutex-guarded [`Recorder`] accumulating a metric [`Registry`] and an
//!   ordered event log. Cloning the handle shares the sink, which is how
//!   one recorder observes a whole system (core network + chord ring).
//!
//! Determinism: the recording sink has no clock and no randomness — the
//! event log is ordered by a sequence number incremented per record — so
//! two runs of the same seeded simulation produce byte-identical
//! [`Telemetry::to_json`] exports (asserted in `tests/telemetry_traces.rs`).

use crate::event::{EventKind, FieldValue, SpanId, TelemetryEvent};
use crate::metrics::{MetricsSnapshot, Registry};
use std::sync::{Arc, Mutex};

/// The recording sink's state: metrics + event log + open-span stack.
#[derive(Debug, Default)]
pub struct Recorder {
    registry: Registry,
    events: Vec<TelemetryEvent>,
    seq: u64,
    /// Stack of open spans; events record the top as their parent.
    open_spans: Vec<SpanId>,
}

impl Recorder {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn current_span(&self) -> SpanId {
        self.open_spans.last().copied().unwrap_or(SpanId::NONE)
    }

    fn push(
        &mut self,
        kind: EventKind,
        name: &'static str,
        span: SpanId,
        fields: &[(&'static str, FieldValue)],
    ) -> u64 {
        let seq = self.next_seq();
        self.events.push(TelemetryEvent {
            seq,
            kind,
            name,
            span,
            fields: fields.to_vec(),
        });
        seq
    }
}

/// A cheap, cloneable instrumentation handle (see module docs).
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<Mutex<Recorder>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("recording", &self.is_recording())
            .finish()
    }
}

impl Telemetry {
    /// The no-op sink: every call is a branch-and-return.
    pub fn noop() -> Telemetry {
        Telemetry { sink: None }
    }

    /// A fresh recording sink.
    pub fn recording() -> Telemetry {
        Telemetry {
            sink: Some(Arc::new(Mutex::new(Recorder::default()))),
        }
    }

    /// True when this handle records (false for the no-op sink).
    pub fn is_recording(&self) -> bool {
        self.sink.is_some()
    }

    fn with<R: Default>(&self, f: impl FnOnce(&mut Recorder) -> R) -> R {
        match &self.sink {
            None => R::default(),
            Some(sink) => f(&mut sink.lock().expect("telemetry sink poisoned")),
        }
    }

    /// Add `delta` to the monotonic counter `name`.
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if self.sink.is_none() {
            return;
        }
        self.with(|r| r.registry.counter_add(name, delta));
    }

    /// Set the gauge `name` (last write wins).
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: u64) {
        if self.sink.is_none() {
            return;
        }
        self.with(|r| r.registry.gauge_set(name, value));
    }

    /// Record `value` into the histogram `name`.
    #[inline]
    pub fn record(&self, name: &'static str, value: u64) {
        if self.sink.is_none() {
            return;
        }
        self.with(|r| r.registry.record(name, value));
    }

    /// Append a point event. Fields are copied only when recording.
    #[inline]
    pub fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        if self.sink.is_none() {
            return;
        }
        self.with(|r| {
            let span = r.current_span();
            r.push(EventKind::Event, name, span, fields);
        });
    }

    /// Open a span; subsequent events (from any clone of this handle) nest
    /// under it until it is closed. Returns [`SpanId::NONE`] on the no-op
    /// sink.
    #[inline]
    pub fn span(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) -> SpanId {
        if self.sink.is_none() {
            return SpanId::NONE;
        }
        self.with(|r| {
            let parent = r.current_span();
            let seq = r.push(EventKind::SpanStart, name, parent, fields);
            let id = SpanId(seq);
            r.open_spans.push(id);
            id
        })
    }

    /// Close a span opened by [`Telemetry::span`], attaching summary
    /// fields to the end event. Closing out of order pops every span
    /// opened after `id` (defensive; instrumentation closes in LIFO
    /// order). No-op for [`SpanId::NONE`].
    #[inline]
    pub fn span_end(&self, id: SpanId, fields: &[(&'static str, FieldValue)]) {
        if self.sink.is_none() || id.is_none() {
            return;
        }
        self.with(|r| {
            if let Some(pos) = r.open_spans.iter().position(|&s| s == id) {
                r.open_spans.truncate(pos);
            }
            let name = r
                .events
                .iter()
                .find(|e| e.seq == id.0)
                .map(|e| e.name)
                .unwrap_or("unknown");
            let parent = r.current_span();
            let mut all = vec![("span", FieldValue::U64(id.0))];
            all.extend(fields.iter().cloned());
            r.push(EventKind::SpanEnd, name, parent, &all);
        });
    }

    /// Snapshot of every metric (empty on the no-op sink).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with(|r| r.registry.snapshot())
    }

    /// Copy of the event log (empty on the no-op sink).
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.with(|r| r.events.clone())
    }

    /// Events with the given name, in log order.
    pub fn events_named(&self, name: &str) -> Vec<TelemetryEvent> {
        self.with(|r| {
            r.events
                .iter()
                .filter(|e| e.name == name)
                .cloned()
                .collect()
        })
    }

    /// Clear the event log and all metrics (the sink stays installed).
    /// Useful between a warm-up phase and a measured phase.
    pub fn reset(&self) {
        self.with(|r| {
            r.registry.clear();
            r.events.clear();
            r.seq = 0;
            r.open_spans.clear();
        });
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.with(|r| r.events.len())
    }

    /// Export the full trace (metric snapshot + event log) as one JSON
    /// document. Deterministic: same seeded run, same bytes. The no-op
    /// sink exports an empty trace.
    pub fn to_json(&self) -> String {
        match &self.sink {
            None => crate::json::trace_json(&MetricsSnapshot::default(), &[]),
            Some(sink) => {
                let r = sink.lock().expect("telemetry sink poisoned");
                crate::json::trace_json(&r.registry.snapshot(), &r.events)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_records_nothing() {
        let t = Telemetry::noop();
        assert!(!t.is_recording());
        t.counter_add("c", 1);
        t.record("h", 5);
        t.gauge_set("g", 2);
        t.event("e", &[("k", 1u64.into())]);
        let s = t.span("s", &[]);
        assert!(s.is_none());
        t.span_end(s, &[]);
        assert!(t.snapshot().is_empty());
        assert!(t.events().is_empty());
        assert_eq!(t.event_count(), 0);
    }

    #[test]
    fn default_is_noop() {
        assert!(!Telemetry::default().is_recording());
    }

    #[test]
    fn recording_sink_accumulates() {
        let t = Telemetry::recording();
        assert!(t.is_recording());
        t.counter_add("c", 2);
        t.counter_add("c", 3);
        t.record("h", 7);
        t.gauge_set("g", 9);
        t.event("e", &[("k", 1u64.into())]);
        let s = t.snapshot();
        assert_eq!(s.counter("c"), 5);
        assert_eq!(s.gauge("g"), Some(9));
        assert_eq!(s.hist("h").unwrap().count, 1);
        assert_eq!(t.events_named("e").len(), 1);
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Telemetry::recording();
        let u = t.clone();
        t.counter_add("c", 1);
        u.counter_add("c", 1);
        assert_eq!(t.snapshot().counter("c"), 2);
        assert_eq!(u.snapshot().counter("c"), 2);
    }

    #[test]
    fn spans_nest_events() {
        let t = Telemetry::recording();
        let outer = t.span("outer", &[]);
        t.event("inside", &[]);
        let inner = t.span("inner", &[]);
        t.event("deep", &[]);
        t.span_end(inner, &[("n", 1u64.into())]);
        t.span_end(outer, &[]);
        t.event("after", &[]);

        let events = t.events();
        assert_eq!(events.len(), 7); // 2 starts + 2 events + 2 ends + 1 after
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("inside").span, outer);
        assert_eq!(by_name("deep").span, inner);
        assert_eq!(by_name("after").span, SpanId::NONE);
        // The inner span's start is parented by the outer span.
        let inner_start = events
            .iter()
            .find(|e| e.kind == EventKind::SpanStart && e.name == "inner")
            .unwrap();
        assert_eq!(inner_start.span, outer);
        // End events carry the span id and the caller's summary fields.
        let inner_end = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd && e.name == "inner")
            .unwrap();
        assert_eq!(inner_end.field_u64("span"), Some(inner.0));
        assert_eq!(inner_end.field_u64("n"), Some(1));
    }

    #[test]
    fn out_of_order_span_end_pops_children() {
        let t = Telemetry::recording();
        let outer = t.span("outer", &[]);
        let _inner = t.span("inner", &[]);
        // Closing the outer span abandons the inner one.
        t.span_end(outer, &[]);
        t.event("after", &[]);
        assert_eq!(t.events_named("after")[0].span, SpanId::NONE);
    }

    #[test]
    fn reset_clears_everything() {
        let t = Telemetry::recording();
        t.counter_add("c", 1);
        t.event("e", &[]);
        t.reset();
        assert!(t.snapshot().is_empty());
        assert_eq!(t.event_count(), 0);
        // Sequence numbers restart, keeping post-reset logs deterministic.
        t.event("e2", &[]);
        assert_eq!(t.events()[0].seq, 1);
    }

    #[test]
    fn noop_json_is_valid_empty_trace() {
        assert_eq!(
            Telemetry::noop().to_json(),
            "{\"metrics\":{\"counters\":{},\"gauges\":{},\"hists\":{}},\"events\":[]}"
        );
    }

    #[test]
    fn json_export_is_deterministic() {
        let run = || {
            let t = Telemetry::recording();
            t.counter_add("b", 2);
            t.counter_add("a", 1);
            t.record("h", 9);
            let s = t.span("q", &[("key", 7u64.into())]);
            t.event("hop", &[("node", 3u64.into())]);
            t.span_end(s, &[("ok", true.into())]);
            t.to_json()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"name\":\"hop\""));
    }

    #[test]
    fn seq_is_monotonic_from_one() {
        let t = Telemetry::recording();
        t.event("a", &[]);
        t.event("b", &[]);
        let s = t.span("c", &[]);
        t.span_end(s, &[]);
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
    }
}
