//! Deterministic, zero-dependency instrumentation for the `ars` workspace.
//!
//! The system-wide observability layer: counters, gauges, log₂-bucketed
//! histograms, and a structured span/event log, behind a single cheap
//! [`Telemetry`] handle. Two sinks:
//!
//! * **no-op** ([`Telemetry::noop`], the default) — every call is a branch
//!   on an `Option`, so instrumented hot paths cost nothing measurable
//!   (pinned <5% on the min-hash kernel by the `telemetry-overhead` CI job);
//! * **recording** ([`Telemetry::recording`]) — a shared sink whose event
//!   log is ordered by sequence number only (no wall clock, no randomness),
//!   so a seeded simulation exports a byte-identical JSON trace every run.
//!
//! # Metric vocabulary
//!
//! Names are dot-separated, `<subsystem>.<metric>`, established here and
//! reused by every later layer:
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `chord.lookups` | counter | greedy lookups started |
//! | `chord.lookup_failures` | counter | greedy lookups that gave up |
//! | `chord.hops` | counter | total hops across greedy lookups |
//! | `chord.finger_touches` | counter | finger/successor candidates examined |
//! | `chord.lookup.hops` | hist | hops per greedy lookup |
//! | `chord.resilient.lookups` | counter | DFS lookups started |
//! | `chord.resilient.failures` | counter | DFS lookups that exhausted budget |
//! | `chord.resilient.hops` | counter | total DFS hops |
//! | `chord.resilient.backtracks` | counter | DFS dead-end pops |
//! | `chord.resilient.lookup.hops` | hist | hops per DFS lookup |
//! | `core.queries` | counter | range queries through `RangeSelectNetwork` |
//! | `core.ident_cache.hits` | counter | identifier-cache hits |
//! | `core.ident_cache.misses` | counter | identifier-cache misses |
//! | `core.bucket.scan_len` | hist | partitions scanned per bucket probe |
//! | `core.query.jaccard` | hist | scaled (×1000) Jaccard of best match |
//! | `resilient.queries` | counter | queries via `ChurnNetwork::query_resilient` |
//! | `resilient.attempts` | counter | lookup attempts (first tries + retries) |
//! | `resilient.successes` | counter | lookups that found a live owner |
//! | `resilient.failures` | counter | lookups that exhausted the retry budget |
//! | `resilient.retries` | counter | retry attempts after a failed first try |
//! | `resilient.backoff_spent` | counter | total backoff ticks consumed |
//! | `resilient.source_fallbacks` | counter | replica fallbacks to non-primary sources |
//! | `replica.stores` | counter | replica copies written by re-replication |
//! | `buckets.placed` | counter | partition copies stored by any path |
//! | `buckets.lost` | counter | live copies destroyed (fail/crash/leave drain) |
//! | `buckets.recovered` | counter | copies replayed from durable logs at restart |
//! | `buckets.live` | gauge | live copies, published by `publish_ledger` — the ledger is `placed == live + lost − recovered` |
//! | `store.appended` | counter | op records written to durable bucket logs |
//! | `store.recovered` | counter | entries recovered from disk at restart |
//! | `store.torn_discarded` | counter | bytes discarded as torn/corrupt during recovery |
//! | `repair.rounds` | counter | anti-entropy repair rounds run |
//! | `repair.entries_sent` | counter | entries pushed to replica owners by repair |
//! | `simnet.sent` / `.delivered` / `.dropped` / `.queued` | gauge | message ledger |
//! | `simnet.bytes` / `.end_time` | gauge | traffic volume / sim clock |
//!
//! Span/event taxonomy: spans `core.query` (one user-visible range query);
//! events `chord.lookup_resilient` (per DFS lookup: `hops`, `backtracks`,
//! `ok`), `resilient.retry` (per retry: `attempt`, `backoff`),
//! `replica.store` (per copy written: `key`, `node`), `core.query`
//! (per query summary: `path`, `matches`), `churn.crash` (per crash:
//! `node`, `buckets_lost`), `churn.restart` (per restart: `node`,
//! `recovered`, `torn_bytes`).
//!
//! # Capturing a trace
//!
//! ```
//! use ars_telemetry::Telemetry;
//!
//! let tel = Telemetry::recording();
//! tel.counter_add("core.queries", 1);
//! let span = tel.span("core.query", &[("range", 42u64.into())]);
//! tel.event("chord.lookup_resilient", &[("hops", 3u64.into()), ("ok", true.into())]);
//! tel.span_end(span, &[("matches", 5u64.into())]);
//!
//! let json = tel.to_json(); // deterministic: same seed, same bytes
//! assert!(json.contains("\"chord.lookup_resilient\""));
//! assert_eq!(tel.snapshot().counter("core.queries"), 1);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::{EventKind, FieldValue, SpanId, TelemetryEvent};
pub use metrics::{bucket_index, Hist, MetricsSnapshot, Registry, HIST_BUCKETS};
pub use sink::{Recorder, Telemetry};
