//! Structured events and spans.
//!
//! A [`TelemetryEvent`] is one record in the recording sink's log: a
//! static name, a monotonically increasing sequence number (the only
//! notion of "time" — there is no wall clock anywhere in this crate, so a
//! seeded run produces a bit-identical log), the enclosing span (if any),
//! and a small list of typed fields. Span start/end are ordinary events
//! distinguished by [`EventKind`]; a span's identity is the sequence
//! number of its start event.

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counters, hop counts, identifiers).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (similarities, recall).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (kept rare: names should be static, values small).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// What kind of record an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A point event.
    Event,
    /// Opens a span; its `seq` is the span's id.
    SpanStart,
    /// Closes the span named by its `span` field.
    SpanEnd,
}

impl EventKind {
    /// Stable lowercase name used in the JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Event => "event",
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
        }
    }
}

/// Identity of an open span (the sequence number of its start event).
/// `SpanId(0)` is the null span handed out by the no-op sink (also the
/// `Default`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span (no-op sink, or "no enclosing span").
    pub const NONE: SpanId = SpanId(0);

    /// True for the null span.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

/// One record in the recording sink's log.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Monotonic sequence number (1-based); the log's deterministic clock.
    pub seq: u64,
    /// Event kind (point event, span start, span end).
    pub kind: EventKind,
    /// Static event name, e.g. `"chord.lookup_resilient"`.
    pub name: &'static str,
    /// Enclosing span (0 when the event is outside any span).
    pub span: SpanId,
    /// Typed fields, in the order the instrumentation supplied them.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TelemetryEvent {
    /// The raw field value for `key`, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Unsigned-integer field accessor (also accepts `I64` ≥ 0).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Floating-point field accessor (integers are widened).
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            FieldValue::F64(v) => Some(*v),
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean field accessor.
    pub fn field_bool(&self, key: &str) -> Option<bool> {
        match self.field(key)? {
            FieldValue::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev() -> TelemetryEvent {
        TelemetryEvent {
            seq: 3,
            kind: EventKind::Event,
            name: "test",
            span: SpanId::NONE,
            fields: vec![
                ("hops", FieldValue::U64(4)),
                ("recall", FieldValue::F64(0.5)),
                ("ok", FieldValue::Bool(true)),
                ("delta", FieldValue::I64(-2)),
            ],
        }
    }

    #[test]
    fn typed_accessors() {
        let e = ev();
        assert_eq!(e.field_u64("hops"), Some(4));
        assert_eq!(e.field_f64("recall"), Some(0.5));
        assert_eq!(e.field_f64("hops"), Some(4.0));
        assert_eq!(e.field_bool("ok"), Some(true));
        assert_eq!(e.field_u64("delta"), None, "negative i64 is not a u64");
        assert_eq!(e.field_u64("missing"), None);
    }

    #[test]
    fn from_impls_cover_common_types() {
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i64), FieldValue::I64(-3));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }

    #[test]
    fn kind_names_stable() {
        assert_eq!(EventKind::Event.name(), "event");
        assert_eq!(EventKind::SpanStart.name(), "span_start");
        assert_eq!(EventKind::SpanEnd.name(), "span_end");
    }

    #[test]
    fn null_span() {
        assert!(SpanId::NONE.is_none());
        assert!(!SpanId(7).is_none());
    }
}
