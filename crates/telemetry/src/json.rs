//! Hand-rolled, deterministic JSON export for the recording sink.
//!
//! The workspace is vendor-free, so no serde: this module serialises the
//! metric snapshot and event log with plain string building. Determinism
//! guarantees: metric maps iterate in `BTreeMap` (lexicographic) order,
//! events in sequence order, fields in instrumentation order, and floats
//! print via `format!("{}")` (shortest round-trip) with non-finite values
//! mapped to `null` — so the same seeded run always yields the same bytes.

use crate::event::{FieldValue, TelemetryEvent};
use crate::metrics::{Hist, MetricsSnapshot};

/// Escape a string per JSON (quotes, backslash, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers like "3" are valid JSON numbers; keep as-is.
        s
    } else {
        "null".to_string()
    }
}

fn field_value(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(v) => format!("{v}"),
        FieldValue::I64(v) => format!("{v}"),
        FieldValue::F64(v) => fmt_f64(*v),
        FieldValue::Bool(v) => format!("{v}"),
        FieldValue::Str(v) => format!("\"{}\"", escape(v)),
    }
}

fn hist_json(h: &Hist) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .iter()
        .map(|(i, c)| format!("[{i},{c}]"))
        .collect();
    let min = if h.count == 0 { 0 } else { h.min };
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"log2_buckets\":[{}]}}",
        h.count,
        h.sum,
        min,
        h.max,
        fmt_f64(h.mean()),
        buckets.join(",")
    )
}

/// Serialise one event as a JSON object.
pub fn event_json(e: &TelemetryEvent) -> String {
    let fields: Vec<String> = e
        .fields
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), field_value(v)))
        .collect();
    format!(
        "{{\"seq\":{},\"kind\":\"{}\",\"name\":\"{}\",\"span\":{},\"fields\":{{{}}}}}",
        e.seq,
        e.kind.name(),
        escape(e.name),
        e.span.0,
        fields.join(",")
    )
}

/// Serialise a metrics snapshot as a JSON object with `counters`,
/// `gauges`, and `hists` sub-objects (all lexicographically ordered).
pub fn snapshot_json(s: &MetricsSnapshot) -> String {
    let counters: Vec<String> = s
        .counters()
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
        .collect();
    let gauges: Vec<String> = s
        .gauges()
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
        .collect();
    let hists: Vec<String> = s
        .hists()
        .iter()
        .map(|(k, h)| format!("\"{}\":{}", escape(k), hist_json(h)))
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"hists\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

/// Serialise a full trace (metrics + event log) as one JSON document.
pub fn trace_json(s: &MetricsSnapshot, events: &[TelemetryEvent]) -> String {
    let evs: Vec<String> = events.iter().map(event_json).collect();
    format!(
        "{{\"metrics\":{},\"events\":[{}]}}",
        snapshot_json(s),
        evs.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, SpanId};
    use crate::metrics::Registry;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(1.5), "1.5");
    }

    #[test]
    fn event_shape() {
        let e = TelemetryEvent {
            seq: 1,
            kind: EventKind::Event,
            name: "q",
            span: SpanId(0),
            fields: vec![
                ("hops", FieldValue::U64(3)),
                ("ok", FieldValue::Bool(true)),
                ("sim", FieldValue::F64(0.25)),
            ],
        };
        assert_eq!(
            event_json(&e),
            "{\"seq\":1,\"kind\":\"event\",\"name\":\"q\",\"span\":0,\
             \"fields\":{\"hops\":3,\"ok\":true,\"sim\":0.25}}"
        );
    }

    #[test]
    fn snapshot_shape_and_order() {
        let mut r = Registry::default();
        r.counter_add("z.c", 1);
        r.counter_add("a.c", 2);
        r.gauge_set("g", 5);
        r.record("h", 4);
        let json = snapshot_json(&r.snapshot());
        assert!(json.starts_with("{\"counters\":{\"a.c\":2,\"z.c\":1}"));
        assert!(json.contains("\"gauges\":{\"g\":5}"));
        assert!(json.contains(
            "\"h\":{\"count\":1,\"sum\":4,\"min\":4,\"max\":4,\"mean\":4,\"log2_buckets\":[[3,1]]}"
        ));
    }

    #[test]
    fn empty_hist_min_prints_zero() {
        // An empty hist can't appear via Registry::record, but guard the
        // u64::MAX sentinel anyway.
        assert!(hist_json(&Hist::default()).contains("\"min\":0"));
    }
}
