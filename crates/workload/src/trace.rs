//! Query traces: an ordered list of range queries plus summary utilities.

use ars_common::FxHashMap;
use ars_lsh::RangeSet;

/// An ordered sequence of range queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    queries: Vec<RangeSet>,
}

impl Trace {
    /// Wrap a query list.
    pub fn new(queries: Vec<RangeSet>) -> Trace {
        Trace { queries }
    }

    /// The queries, in arrival order.
    pub fn queries(&self) -> &[RangeSet] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Fraction of queries that exactly repeat an earlier query — the
    /// paper reports ≈0.2% for its uniform workload.
    pub fn repetition_rate(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let mut seen: FxHashMap<&RangeSet, ()> = FxHashMap::default();
        let mut repeats = 0usize;
        for q in &self.queries {
            if seen.insert(q, ()).is_some() {
                repeats += 1;
            }
        }
        repeats as f64 / self.queries.len() as f64
    }

    /// Number of distinct queries.
    pub fn distinct(&self) -> usize {
        let mut seen: FxHashMap<&RangeSet, ()> = FxHashMap::default();
        for q in &self.queries {
            seen.insert(q, ());
        }
        seen.len()
    }

    /// Split off the paper's warm-up prefix: returns
    /// `(warmup, measured)` where `warmup` is the first `frac` of queries
    /// (the paper drops the first 20% from its quality figures).
    pub fn split_warmup(&self, frac: f64) -> (&[RangeSet], &[RangeSet]) {
        assert!((0.0..=1.0).contains(&frac), "warm-up fraction out of range");
        let cut = (self.queries.len() as f64 * frac).round() as usize;
        self.queries.split_at(cut.min(self.queries.len()))
    }

    /// Mean query cardinality (number of values per range).
    pub fn mean_size(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(|q| q.len() as f64).sum::<f64>() / self.queries.len() as f64
    }
}

impl FromIterator<RangeSet> for Trace {
    fn from_iter<I: IntoIterator<Item = RangeSet>>(iter: I) -> Trace {
        Trace::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    #[test]
    fn repetition_rate_counts_repeats() {
        let t = Trace::new(vec![r(0, 1), r(0, 1), r(2, 3), r(0, 1)]);
        assert!((t.repetition_rate() - 0.5).abs() < 1e-12);
        assert_eq!(t.distinct(), 2);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(vec![]);
        assert_eq!(t.repetition_rate(), 0.0);
        assert_eq!(t.distinct(), 0);
        assert!(t.is_empty());
        assert_eq!(t.mean_size(), 0.0);
    }

    #[test]
    fn split_warmup_fraction() {
        let t: Trace = (0..10).map(|i| r(i, i + 1)).collect();
        let (warm, rest) = t.split_warmup(0.2);
        assert_eq!(warm.len(), 2);
        assert_eq!(rest.len(), 8);
        assert_eq!(warm[0], r(0, 1));
        assert_eq!(rest[0], r(2, 3));
    }

    #[test]
    fn split_warmup_extremes() {
        let t: Trace = (0..4).map(|i| r(i, i)).collect();
        assert_eq!(t.split_warmup(0.0).0.len(), 0);
        assert_eq!(t.split_warmup(1.0).1.len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_warmup_validates() {
        Trace::new(vec![]).split_warmup(1.5);
    }

    #[test]
    fn mean_size() {
        let t = Trace::new(vec![r(0, 9), r(0, 19)]); // sizes 10 and 20
        assert!((t.mean_size() - 15.0).abs() < 1e-12);
    }
}
