//! Synthetic query workloads.
//!
//! The paper's quality experiments (§5.1–5.2) use "a set of 10,000 integer
//! ranges with integers in 0 and 1000 … generated uniformly at random"
//! with ≈0.2% exact repetitions. [`uniform_trace`] regenerates that
//! workload from a seed; Zipf-skewed and clustered variants model the
//! popularity skew real P2P query streams exhibit (they make caching far
//! more effective — an extension experiment in `ars-bench`).

#![warn(missing_docs)]

pub mod generators;
pub mod trace;

pub use generators::{clustered_trace, uniform_trace, zipf_trace, SizeSweep};
pub use trace::Trace;
