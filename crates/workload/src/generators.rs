//! Workload generators.

use crate::trace::Trace;
use ars_common::DetRng;
use ars_lsh::RangeSet;

/// The paper's §5.1 workload: `n` ranges whose two endpoints are drawn
/// uniformly from `[domain_lo, domain_hi]` (and swapped into order). With
/// `n = 10_000` over `[0, 1000]` this reproduces the reported ≈0.2–1%
/// exact-repetition rate.
pub fn uniform_trace(n: usize, domain_lo: u32, domain_hi: u32, seed: u64) -> Trace {
    assert!(domain_lo <= domain_hi, "empty domain");
    let mut rng = DetRng::new(seed);
    (0..n)
        .map(|_| {
            let a = rng.gen_inclusive_u32(domain_lo, domain_hi);
            let b = rng.gen_inclusive_u32(domain_lo, domain_hi);
            RangeSet::interval(a.min(b), a.max(b))
        })
        .collect()
}

/// A Zipf-skewed workload: query *centers* follow a Zipf(`s`) law over
/// `n_hotspots` popular values, widths are uniform in `[1, max_width]`.
/// Models the "P2P users ask popular broad queries" observation the paper
/// leans on — repeated/near-repeated queries make the cache far more
/// effective than under the uniform trace.
pub fn zipf_trace(
    n: usize,
    domain_lo: u32,
    domain_hi: u32,
    n_hotspots: usize,
    s: f64,
    max_width: u32,
    seed: u64,
) -> Trace {
    assert!(domain_lo < domain_hi, "empty domain");
    assert!(n_hotspots >= 1 && s > 0.0 && max_width >= 1);
    let mut rng = DetRng::new(seed);
    // Hotspot centers scattered over the domain (deterministic).
    let centers: Vec<u32> = (0..n_hotspots)
        .map(|_| rng.gen_inclusive_u32(domain_lo, domain_hi))
        .collect();
    // Zipf CDF over ranks 1..=n_hotspots.
    let weights: Vec<f64> = (1..=n_hotspots).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(n_hotspots);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..n)
        .map(|_| {
            let u = rng.gen_f64();
            let rank = cdf.partition_point(|&c| c < u).min(n_hotspots - 1);
            let center = centers[rank];
            let width = rng.gen_inclusive_u32(1, max_width);
            let half = width / 2;
            let lo = center.saturating_sub(half).max(domain_lo);
            let hi = center.saturating_add(width - half).min(domain_hi);
            RangeSet::interval(lo, hi.max(lo))
        })
        .collect()
}

/// A clustered workload: each query perturbs one of `n_clusters` template
/// ranges by a small jitter on both edges — many *similar but not
/// identical* queries, the regime approximate matching is designed for.
pub fn clustered_trace(
    n: usize,
    domain_lo: u32,
    domain_hi: u32,
    n_clusters: usize,
    jitter: u32,
    seed: u64,
) -> Trace {
    assert!(domain_lo < domain_hi, "empty domain");
    assert!(n_clusters >= 1);
    let mut rng = DetRng::new(seed);
    let templates: Vec<(u32, u32)> = (0..n_clusters)
        .map(|_| {
            let a = rng.gen_inclusive_u32(domain_lo, domain_hi);
            let b = rng.gen_inclusive_u32(domain_lo, domain_hi);
            (a.min(b), a.max(b))
        })
        .collect();
    (0..n)
        .map(|_| {
            let (lo, hi) = templates[rng.gen_index(n_clusters)];
            let dl = rng.gen_inclusive_u32(0, jitter);
            let dh = rng.gen_inclusive_u32(0, jitter);
            let new_lo = lo.saturating_sub(dl).max(domain_lo);
            let new_hi = (hi.saturating_add(dh)).min(domain_hi);
            RangeSet::interval(new_lo, new_hi.max(new_lo))
        })
        .collect()
}

/// Fixed-size ranges for the Fig. 5 timing sweep: for each requested size,
/// `per_size` ranges of exactly that many values, placed uniformly.
#[derive(Debug, Clone)]
pub struct SizeSweep {
    /// `(size, ranges)` pairs in requested order.
    pub points: Vec<(u32, Vec<RangeSet>)>,
}

impl SizeSweep {
    /// Build the sweep. Sizes must be ≥ 1; placement stays inside
    /// `[0, domain_hi]`.
    pub fn new(sizes: &[u32], per_size: usize, domain_hi: u32, seed: u64) -> SizeSweep {
        let mut rng = DetRng::new(seed);
        let points = sizes
            .iter()
            .map(|&size| {
                assert!(size >= 1, "range size must be ≥ 1");
                assert!(size <= domain_hi + 1, "size {size} exceeds domain");
                let ranges = (0..per_size)
                    .map(|_| {
                        let lo = rng.gen_inclusive_u32(0, domain_hi - (size - 1));
                        RangeSet::interval(lo, lo + size - 1)
                    })
                    .collect();
                (size, ranges)
            })
            .collect();
        SizeSweep { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_trace_matches_paper_shape() {
        let t = uniform_trace(10_000, 0, 1000, 42);
        assert_eq!(t.len(), 10_000);
        for q in t.queries() {
            assert!(q.min_value().unwrap() <= q.max_value().unwrap());
            assert!(q.max_value().unwrap() <= 1000);
        }
        // The paper reports ≈0.2% repetitions; uniform endpoint pairs give
        // ≈1%. Accept the order of magnitude and record the exact value in
        // EXPERIMENTS.md.
        let rate = t.repetition_rate();
        assert!(rate < 0.03, "repetition rate {rate} implausibly high");
    }

    #[test]
    fn uniform_trace_deterministic() {
        assert_eq!(
            uniform_trace(100, 0, 1000, 7),
            uniform_trace(100, 0, 1000, 7)
        );
        assert_ne!(
            uniform_trace(100, 0, 1000, 7),
            uniform_trace(100, 0, 1000, 8)
        );
    }

    #[test]
    fn zipf_trace_is_skewed() {
        let t = zipf_trace(5000, 0, 1000, 50, 1.1, 40, 3);
        assert_eq!(t.len(), 5000);
        // Skew ⇒ far fewer distinct queries than the uniform trace.
        let uniform = uniform_trace(5000, 0, 1000, 3);
        assert!(t.distinct() < uniform.distinct() / 2);
        for q in t.queries() {
            assert!(q.max_value().unwrap() <= 1000);
        }
    }

    #[test]
    fn clustered_trace_stays_near_templates() {
        let t = clustered_trace(1000, 0, 1000, 5, 10, 9);
        assert_eq!(t.len(), 1000);
        // With 5 templates and ±10 jitter, queries collapse into few
        // distinct shapes.
        assert!(t.distinct() <= 5 * 11 * 11);
    }

    #[test]
    fn size_sweep_exact_sizes() {
        let sweep = SizeSweep::new(&[10, 100, 1500], 8, 100_000, 5);
        assert_eq!(sweep.points.len(), 3);
        for (size, ranges) in &sweep.points {
            assert_eq!(ranges.len(), 8);
            for r in ranges {
                assert_eq!(r.len(), *size as u64, "requested size {size}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds domain")]
    fn size_sweep_validates_domain() {
        SizeSweep::new(&[2000], 1, 1000, 0);
    }

    #[test]
    fn traces_stay_in_domain_bounds() {
        for seed in 0..5 {
            let t = zipf_trace(500, 100, 900, 20, 1.0, 50, seed);
            for q in t.queries() {
                assert!(q.min_value().unwrap() >= 100 || q.min_value().unwrap() >= 50);
                assert!(q.max_value().unwrap() <= 900);
            }
        }
    }
}
