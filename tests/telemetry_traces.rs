//! Trace-based testing through the telemetry layer: assertions on what
//! the system *did* (hop-by-hop events, metric ledgers) rather than only
//! on what it returned.
//!
//! * hop-bound: on a healthy converged ring, every `lookup_resilient`
//!   trace event stays within ⌈log₂N⌉ + successor-list budget hops;
//! * ledger conservation (property tests): `core.queries ==
//!   cache_hits + cache_misses`, `resilient.attempts == successes +
//!   failures + retries`, and the `simnet.*` gauges reproduce
//!   `SimStats::is_conserved`;
//! * non-perturbation: attaching a recording sink changes no outcome;
//! * determinism: two identical seeded runs export byte-identical JSON.
//!
//! The seed honors `ARS_FAULT_SEED` (default 0), same as the
//! fault-injection suite, so CI sweeps the matrix over these assertions.

use ars::prelude::*;
use ars::simnet::{ConstantLatency, Node, NodeCtx};
use ars::telemetry::EventKind;
use proptest::prelude::*;

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Grow a converged dynamic ring of `n` nodes (same idiom as the
/// fault-injection suite).
fn grown(n: usize, seed: u64) -> DynamicNetwork {
    let mut rng = DetRng::new(seed);
    let first = Id(rng.next_u32());
    let mut net = DynamicNetwork::bootstrap(first, 8);
    while net.len() < n {
        let id = Id(rng.next_u32());
        if net.node_ids().contains(&id) {
            continue;
        }
        net.join(id, first).expect("join during growth");
        net.stabilize_all(32);
    }
    net.stabilize_until_consistent(64)
        .expect("growth converges");
    net
}

fn trace_ranges(n: usize) -> Vec<RangeSet> {
    (0..n as u32)
        .map(|i| {
            let lo = i * 523 % 40_000;
            RangeSet::interval(lo, lo + 60 + (i % 5) * 25)
        })
        .collect()
}

// ---------------------------------------------------------------------
// 1. Hop bound, asserted on the trace: every resilient lookup on a
//    healthy converged ring completes within ⌈log₂N⌉ + the successor-
//    list budget, without a single backtrack.
// ---------------------------------------------------------------------

#[test]
fn resilient_lookup_trace_respects_hop_bound_on_healthy_ring() {
    const N: usize = 32;
    const SUCC_LIST_BUDGET: usize = 8; // bootstrap(_, 8) successor lists
    let mut net = grown(N, 11 + fault_seed());
    let tel = Telemetry::recording();
    net.set_telemetry(tel.clone());

    let ids = net.node_ids();
    let mut rng = DetRng::new(fault_seed() ^ 0x7e1e);
    for _ in 0..100 {
        let from = ids[rng.gen_index(ids.len())];
        let key = Id(rng.next_u32());
        let (owner, _) = net
            .lookup_resilient(from, key, 4 * N)
            .expect("healthy ring resolves everything");
        assert_eq!(owner, net.true_owner(key));
    }

    let bound = ((N as f64).log2().ceil() as u64) + SUCC_LIST_BUDGET as u64;
    let events = tel.events_named("chord.lookup_resilient");
    assert_eq!(events.len(), 100, "one trace event per lookup");
    for e in &events {
        assert_eq!(e.field_bool("ok"), Some(true));
        assert_eq!(
            e.field_u64("backtracks"),
            Some(0),
            "no detours when healthy"
        );
        let hops = e.field_u64("hops").expect("hops field");
        assert!(
            hops <= bound,
            "lookup took {hops} hops, over the ⌈log₂{N}⌉+{SUCC_LIST_BUDGET} = {bound} bound"
        );
    }
    // The histogram agrees with the per-event stream.
    let snap = tel.snapshot();
    let hist = snap.hist("chord.resilient.lookup.hops").expect("hist");
    assert_eq!(hist.count, 100);
    assert!(hist.max <= bound);
}

// ---------------------------------------------------------------------
// 2. Ledger conservation properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Static network: every query does exactly one identifier-cache
    /// lookup, so `core.queries == hits + misses` for any trace shape,
    /// sequential or batched.
    #[test]
    fn cache_ledger_balances(
        n_queries in 1usize..30,
        repeat_every in 1usize..6,
        batched in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        let config = SystemConfig::default().with_kl(8, 2).with_seed(seed);
        let mut net = RangeSelectNetwork::new(16, config);
        let tel = Telemetry::recording();
        net.set_telemetry(tel.clone());
        let queries: Vec<RangeSet> = (0..n_queries as u32)
            .map(|i| {
                let j = i / repeat_every as u32 * repeat_every as u32;
                RangeSet::interval(j * 100, j * 100 + 50)
            })
            .collect();
        if batched {
            net.query_batch(&queries);
        } else {
            for q in &queries {
                net.query(q);
            }
        }
        let snap = tel.snapshot();
        let hits = snap.counter("core.ident_cache.hits");
        let misses = snap.counter("core.ident_cache.misses");
        prop_assert_eq!(snap.counter("core.queries"), n_queries as u64);
        prop_assert_eq!(hits + misses, n_queries as u64);
        // And the registry mirrors the cache's own view exactly.
        prop_assert_eq!(hits, net.identifier_cache().hits());
        prop_assert_eq!(misses, net.identifier_cache().misses());
    }

    /// Churn network: each lookup spends 1 first try plus its retries and
    /// ends in exactly one of success/failure, so for any fault plan
    /// `attempts == successes + failures + retries`.
    #[test]
    fn attempt_ledger_balances_under_arbitrary_faults(
        victims in 0usize..6,
        loss in 0.0f64..0.9,
        replication in 1usize..3,
        seed in 0u64..1_000_000,
    ) {
        let config = SystemConfig::default()
            .with_kl(8, 2)
            .with_replication(replication)
            .with_seed(seed);
        let mut net = ChurnNetwork::new(16, config).expect("growth converges");
        let tel = Telemetry::recording();
        net.set_telemetry(tel.clone());
        net.fail_random(victims);
        net.set_lookup_loss(loss);
        for q in trace_ranges(8) {
            net.query_resilient(&q);
        }
        let snap = tel.snapshot();
        prop_assert_eq!(
            snap.counter("resilient.attempts"),
            snap.counter("resilient.successes")
                + snap.counter("resilient.failures")
                + snap.counter("resilient.retries")
        );
        prop_assert_eq!(snap.counter("resilient.queries"), 8);
        // Cross-check against the ResilienceStats ledger.
        prop_assert_eq!(
            snap.counter("resilient.attempts"),
            net.resilience().lookups_attempted
        );
        prop_assert_eq!(
            snap.counter("resilient.source_fallbacks"),
            net.resilience().source_fallbacks
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The bucket ledger: every partition copy is placed once, lost at
    /// most once, and recovered at most once, so at any quiet point
    /// `placed == live + lost − recovered` — under any interleaving of
    /// queries, fails, leaves, joins, crashes, and restarts, with and
    /// without durable stores. Checked both against the telemetry
    /// counters and the published `buckets.live` gauge.
    #[test]
    fn bucket_ledger_balances_under_churn_crash_restart(
        ops in prop::collection::vec((0u8..6, any::<u16>()), 1..25),
        durable in any::<bool>(),
        replication in 1usize..3,
        seed in 0u64..1_000_000,
    ) {
        let mut config = SystemConfig::default()
            .with_kl(8, 2)
            .with_replication(replication)
            .with_seed(seed ^ (fault_seed() << 48));
        if durable {
            config = config.with_durability(
                DurabilityConfig::default().with_faults(
                    StorageFaults::none().with_torn_write(0.3).with_bit_flip(0.1),
                ),
            );
        }
        let mut net = ChurnNetwork::new(14, config).expect("growth converges");
        let tel = Telemetry::recording();
        net.set_telemetry(tel.clone());
        let mut downed: Vec<Id> = Vec::new();
        for (op, arg) in ops {
            match op {
                0 | 1 => {
                    let lo = (arg as u32) * 7 % 40_000;
                    net.query_resilient(&RangeSet::interval(lo, lo + 80));
                }
                2 => {
                    if net.len() > 8 {
                        net.fail_random(1);
                    }
                }
                3 => {
                    if net.len() > 8 {
                        let ids = net.chord().node_ids();
                        let _ = net.leave(ids[arg as usize % ids.len()]);
                    }
                }
                4 => {
                    if net.len() > 8 {
                        downed.extend(net.crash_random(1));
                    }
                }
                _ => {
                    if let Some(id) = downed.pop() {
                        net.restart(id).expect("restart rejoins");
                    } else {
                        let _ = net.join_random();
                    }
                }
            }
        }
        net.stabilize(256).expect("recovers");
        net.publish_ledger();
        let snap = tel.snapshot();
        let live = snap.gauge("buckets.live").unwrap_or(0);
        prop_assert_eq!(live, net.total_partitions() as u64);
        prop_assert_eq!(
            snap.counter("buckets.placed") + snap.counter("buckets.recovered"),
            live + snap.counter("buckets.lost"),
            "placed == live + lost − recovered must hold"
        );
        // The telemetry counters mirror ResilienceStats exactly.
        let s = net.resilience();
        prop_assert_eq!(snap.counter("buckets.placed"), s.buckets_placed);
        prop_assert_eq!(snap.counter("buckets.lost"), s.buckets_lost);
        prop_assert_eq!(snap.counter("buckets.recovered"), s.buckets_recovered);
        prop_assert_eq!(snap.counter("store.recovered"), s.buckets_recovered);
        if !durable {
            prop_assert_eq!(snap.counter("store.appended"), 0);
            prop_assert_eq!(snap.counter("buckets.recovered"), 0);
        }
    }
}

// ---------------------------------------------------------------------
// 3. SimNet's message ledger, re-exported as gauges, reproduces the
//    conservation invariant from the snapshot alone.
// ---------------------------------------------------------------------

struct Relay {
    n_nodes: usize,
}

impl Node<u32> for Relay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, _from: usize, msg: u32) {
        if msg > 0 {
            ctx.send((ctx.me + 1) % self.n_nodes, msg - 1);
        }
    }
}

#[test]
fn simnet_gauges_reproduce_conservation_invariant() {
    let n = 16;
    let nodes: Vec<Box<dyn Node<u32>>> = (0..n)
        .map(|_| Box::new(Relay { n_nodes: n }) as Box<dyn Node<u32>>)
        .collect();
    let mut sim = SimNet::new(nodes, ConstantLatency(3));
    sim.set_faults(FaultPlan::none().with_drop(0.15), fault_seed());
    for i in 0..n {
        sim.inject(0, i, 30);
    }
    let tel = Telemetry::recording();
    // Mid-flight export: the gauges must balance even with messages
    // still queued.
    sim.export_telemetry(&tel);
    let snap = tel.snapshot();
    assert_eq!(
        snap.gauge("simnet.sent").unwrap(),
        snap.gauge("simnet.delivered").unwrap()
            + snap.gauge("simnet.dropped").unwrap()
            + snap.gauge("simnet.queued").unwrap(),
        "gauge ledger must balance mid-flight"
    );
    sim.run(u64::MAX);
    sim.export_telemetry(&tel); // gauges are last-write-wins
    let snap = tel.snapshot();
    assert!(sim.stats().is_conserved());
    assert_eq!(snap.gauge("simnet.queued"), Some(0));
    assert_eq!(
        snap.gauge("simnet.sent").unwrap(),
        snap.gauge("simnet.delivered").unwrap() + snap.gauge("simnet.dropped").unwrap()
    );
    assert_eq!(snap.gauge("simnet.sent"), Some(sim.stats().sent));
    assert!(snap.gauge("simnet.dropped").unwrap() > 0, "15% drop bites");
}

// ---------------------------------------------------------------------
// 4. Observing must not perturb: a recording sink leaves every outcome
//    bit-identical to the no-op run.
// ---------------------------------------------------------------------

#[test]
fn recording_sink_does_not_perturb_outcomes() {
    let config = SystemConfig::default().with_seed(fault_seed() ^ 0xCAFE);
    let queries = trace_ranges(12);

    let mut plain = RangeSelectNetwork::new(24, config.clone());
    let mut observed = RangeSelectNetwork::new(24, config);
    observed.set_telemetry(Telemetry::recording());

    let out_plain: Vec<QueryOutcome> = queries.iter().map(|q| plain.query(q)).collect();
    let out_observed: Vec<QueryOutcome> = queries.iter().map(|q| observed.query(q)).collect();
    assert_eq!(out_plain, out_observed, "telemetry must be a pure observer");
    assert_eq!(plain.stats(), observed.stats());
}

// ---------------------------------------------------------------------
// 5. Determinism: identical seeded runs export byte-identical JSON, and
//    chord events nest under the query span that caused them.
// ---------------------------------------------------------------------

fn churn_run_json(seed: u64) -> String {
    let config = SystemConfig::default().with_kl(8, 2).with_seed(seed);
    let mut net = ChurnNetwork::new(12, config).expect("growth converges");
    let tel = Telemetry::recording();
    net.set_telemetry(tel.clone());
    net.fail_random(2);
    net.set_lookup_loss(0.2);
    for q in trace_ranges(5) {
        net.query_resilient(&q);
    }
    tel.to_json()
}

#[test]
fn identical_seeded_runs_export_identical_json() {
    let seed = fault_seed().wrapping_add(3);
    let a = churn_run_json(seed);
    let b = churn_run_json(seed);
    assert_eq!(a, b, "same seed must produce the same trace bytes");
    assert!(a.contains("\"resilient.queries\":5"));
    assert!(a.contains("\"events\":["));
}

#[test]
fn chord_events_nest_under_their_query_span() {
    let config = SystemConfig::default()
        .with_kl(8, 2)
        .with_seed(fault_seed());
    let mut net = ChurnNetwork::new(12, config).expect("growth converges");
    let tel = Telemetry::recording();
    net.set_telemetry(tel.clone());
    net.fail_random(3); // force the resilient path (and its events)
    for q in trace_ranges(4) {
        net.query_resilient(&q);
    }
    let events = tel.events();
    let spans: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart && e.name == "core.query")
        .collect();
    assert_eq!(spans.len(), 4, "one span per resilient query");
    let span_ids: Vec<u64> = spans.iter().map(|e| e.seq).collect();
    // Every chord-level event recorded during a query points back at an
    // open core.query span.
    let chord_events: Vec<_> = events
        .iter()
        .filter(|e| e.name == "chord.lookup_resilient" || e.name == "resilient.retry")
        .collect();
    for e in &chord_events {
        assert!(
            span_ids.contains(&e.span.0),
            "{} event at seq {} is not nested in a query span",
            e.name,
            e.seq
        );
    }
}

// ---------------------------------------------------------------------
// 6. The no-op sink is truly silent.
// ---------------------------------------------------------------------

#[test]
fn noop_sink_records_nothing_across_the_stack() {
    let mut net = ChurnNetwork::new(
        12,
        SystemConfig::default()
            .with_kl(8, 2)
            .with_seed(fault_seed()),
    )
    .expect("growth converges");
    // Default telemetry is the no-op sink; run a workload and confirm
    // nothing is observable.
    for q in trace_ranges(4) {
        net.query_resilient(&q);
    }
    assert!(!net.telemetry().is_recording());
    assert!(net.telemetry().snapshot().is_empty());
    assert_eq!(net.telemetry().event_count(), 0);
}
