//! The protocol across real OS threads (crossbeam channels) must produce
//! the same query outcomes as the deterministic simulations — concurrency
//! reorders deliveries, not results.

use ars::core::ThreadedProtoNetwork;
use ars::prelude::*;

#[test]
fn threaded_equals_direct() {
    let config = SystemConfig::default().with_seed(31337);
    let mut direct = RangeSelectNetwork::new(16, config.clone());
    let mut threaded = ThreadedProtoNetwork::spawn(16, config);

    let trace = uniform_trace(150, 0, 1000, 3);
    for q in trace.queries() {
        let a = direct.query(q);
        let b = threaded.query(q);
        assert_eq!(a.best_match, b.best_match, "match diverged for {q}");
        assert_eq!(a.recall, b.recall, "recall diverged for {q}");
        assert_eq!(a.exact, b.exact, "exactness diverged for {q}");
    }
    threaded.shutdown();
}

#[test]
fn threaded_handles_interleaved_exact_hits() {
    let mut threaded = ThreadedProtoNetwork::spawn(8, SystemConfig::default().with_seed(99));
    let q = RangeSet::interval(100, 300);
    let first = threaded.query(&q);
    assert!(!first.exact);
    for _ in 0..5 {
        let again = threaded.query(&q);
        assert!(again.exact, "repeat must hit the cached partition");
        assert_eq!(again.recall, 1.0);
    }
    threaded.shutdown();
}
