//! Schedule-invariance suite for the concurrent query engine (ISSUE 6).
//!
//! The engine's contract is "equivalent modulo commutative reordering":
//! at a fixed shard count, the sequential inline reference
//! (`query_trace_sharded`), the single-worker sharded engine
//! (`query_batch_sharded`), and the multi-worker concurrent engine
//! (`query_batch_concurrent_with`) must produce identical outcome
//! multisets (here: identical *sequences*, a stronger claim the
//! conflict scheduler makes true), identical recall, and matching
//! conserved ledgers — cache `hits + misses == queries`, `lookups ==
//! Σ attempts`, identical stored-partition totals. With one shard the
//! engine must reproduce the plain sequential `query()` loop bit for
//! bit, bounded caches included; with many shards it must match the
//! sequential path on every origin-independent field (only `hops`
//! depends on which RNG stream drew the origin).
//!
//! The fixed seed honors `ARS_FAULT_SEED` (default 0) so CI sweeps a
//! small matrix of seeds over the same assertions.

use ars::prelude::*;
use proptest::prelude::*;

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Strategy: a short trace of non-empty ranges with planted repeats so
/// the identifier cache and bucket matching both get exercised.
fn trace_strategy() -> impl Strategy<Value = Vec<RangeSet>> {
    prop::collection::vec((0u32..800, 0u32..80, any::<bool>()), 4..24).prop_map(|specs| {
        let mut qs = Vec::with_capacity(specs.len() * 2);
        for (lo, width, repeat) in specs {
            qs.push(RangeSet::interval(lo, lo + width));
            if repeat {
                qs.push(RangeSet::interval(100, 160)); // popular range
            }
        }
        qs
    })
}

fn net(seed: u64, capacity: usize) -> RangeSelectNetwork {
    RangeSelectNetwork::new(
        24,
        SystemConfig::default()
            .with_seed(seed)
            .with_ident_cache_capacity(capacity),
    )
}

/// The conserved ledgers every engine run must balance, regardless of
/// schedule: one cache lookup per query, `l` routed lookups per attempt,
/// stats consistent with the outcomes they summarize.
fn assert_ledgers(net: &RangeSelectNetwork, outs: &[QueryOutcome], label: &str) {
    let cache = net.identifier_cache();
    assert_eq!(
        cache.hits() + cache.misses(),
        outs.len() as u64,
        "{label}: cache lookups != queries"
    );
    let stats = net.stats();
    assert_eq!(stats.queries, outs.len() as u64, "{label}: query count");
    assert_eq!(
        stats.lookups,
        outs.iter().map(|o| o.attempts as u64).sum::<u64>(),
        "{label}: lookups != Σ attempts"
    );
    assert_eq!(
        stats.matched,
        outs.iter().filter(|o| o.best_match.is_some()).count() as u64,
        "{label}: matched ledger"
    );
    assert_eq!(
        stats.exact,
        outs.iter().filter(|o| o.exact).count() as u64,
        "{label}: exact ledger"
    );
    assert_eq!(
        stats.stored,
        outs.iter().filter(|o| o.stored).count() as u64,
        "{label}: stored ledger"
    );
    assert_eq!(
        stats.total_hops,
        outs.iter()
            .flat_map(|o| o.hops.iter())
            .map(|&h| h as u64)
            .sum::<u64>(),
        "{label}: hop ledger"
    );
    for o in outs {
        let mut distinct = o.identifiers.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(
            o.attempts,
            distinct.len(),
            "{label}: one attempt per distinct identifier \
             (within-query dedup; static ring never retries)"
        );
    }
}

/// Strip the only origin-dependent field for cross-shard-count and
/// engine-vs-legacy comparison.
fn without_hops(mut o: QueryOutcome) -> QueryOutcome {
    o.hops.clear();
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: at each shard count, all three engines
    /// produce identical outcomes, stats, and balanced ledgers — and the
    /// concurrent engine agrees at every worker count.
    #[test]
    fn engines_agree_at_every_shard_count(qs in trace_strategy(), salt in 0u64..64) {
        let seed = fault_seed().wrapping_mul(0x9E37_79B9).wrapping_add(salt);
        for shards in SHARD_COUNTS {
            let mut inline = net(seed, 0);
            let out_inline = inline.query_trace_sharded(&qs, shards);
            assert_ledgers(&inline, &out_inline, "inline");

            let mut sharded = net(seed, 0);
            let out_sharded = sharded.query_batch_sharded(&qs, shards);
            prop_assert_eq!(&out_inline, &out_sharded, "sharded engine diverged at {} shards", shards);
            prop_assert_eq!(inline.stats(), sharded.stats());
            assert_ledgers(&sharded, &out_sharded, "sharded");

            for workers in [2usize, 4] {
                let mut conc = net(seed, 0);
                let out_conc = conc.query_batch_concurrent_with(
                    &qs,
                    EngineOptions { shards, workers, queue: 16 },
                );
                prop_assert_eq!(
                    &out_inline, &out_conc,
                    "concurrent engine diverged at {} shards / {} workers", shards, workers
                );
                prop_assert_eq!(inline.stats(), conc.stats());
                prop_assert_eq!(inline.total_partitions(), conc.total_partitions());
                assert_ledgers(&conc, &out_conc, "concurrent");
                // Recall is part of the outcome, but assert it explicitly:
                // it is the paper-facing metric the relaxation must not move.
                for (a, b) in out_inline.iter().zip(&out_conc) {
                    prop_assert_eq!(a.recall, b.recall);
                }
            }
        }
    }

    /// Against the legacy sequential loop: every origin-independent field
    /// matches at any shard count (owners are origin-independent on a
    /// static ring), and the stats differ at most in `total_hops`.
    #[test]
    fn concurrent_matches_legacy_modulo_hops(qs in trace_strategy(), salt in 0u64..64) {
        let seed = fault_seed().wrapping_mul(0x9E37_79B9).wrapping_add(salt);
        let mut legacy = net(seed, 0);
        let out_legacy: Vec<QueryOutcome> = qs.iter().map(|q| legacy.query(q)).collect();
        for shards in [2usize, 7] {
            let mut conc = net(seed, 0);
            let out_conc = conc.query_batch_concurrent_with(
                &qs,
                EngineOptions { shards, workers: 3, queue: 8 },
            );
            let a: Vec<QueryOutcome> = out_legacy.iter().cloned().map(without_hops).collect();
            let b: Vec<QueryOutcome> = out_conc.into_iter().map(without_hops).collect();
            prop_assert_eq!(a, b, "origin-independent fields diverged at {} shards", shards);
            let (ls, cs) = (legacy.stats(), conc.stats());
            prop_assert_eq!(ls.queries, cs.queries);
            prop_assert_eq!(ls.matched, cs.matched);
            prop_assert_eq!(ls.exact, cs.exact);
            prop_assert_eq!(ls.stored, cs.stored);
            prop_assert_eq!(ls.lookups, cs.lookups);
            prop_assert_eq!(legacy.total_partitions(), conc.total_partitions());
        }
    }

    /// Bounded caches under concurrency: FIFO segments still balance the
    /// ledgers and respect the global capacity after merge.
    #[test]
    fn bounded_cache_ledgers_conserved(qs in trace_strategy(), capacity in 1usize..8) {
        let seed = fault_seed().wrapping_add(capacity as u64);
        let mut conc = net(seed, capacity);
        let outs = conc.query_batch_concurrent_with(
            &qs,
            EngineOptions { shards: 4, workers: 4, queue: 8 },
        );
        assert_ledgers(&conc, &outs, "bounded");
        prop_assert!(conc.identifier_cache().len() <= capacity);
    }
}

/// Satellite 2's exactness half: one shard reproduces the old global
/// cache accounting *exactly* — hits, misses, FIFO evictions, final
/// size — across unbounded and tightly bounded capacities, and the two
/// single-worker engine forms agree with it.
#[test]
fn single_shard_reproduces_global_cache_accounting() {
    let base = fault_seed();
    let mut qs = Vec::new();
    for i in 0..50u32 {
        let lo = (i * 37) % 700;
        qs.push(RangeSet::interval(lo, lo + 10 + (i % 6) * 20));
        if i % 3 == 0 {
            qs.push(RangeSet::interval(30, 50));
        }
    }
    for capacity in [0usize, 1, 2, 3, 7] {
        let mut seq = net(base.wrapping_add(41), capacity);
        let out_seq: Vec<QueryOutcome> = qs.iter().map(|q| seq.query(q)).collect();

        for (label, out_eng, eng) in [
            {
                let mut n = net(base.wrapping_add(41), capacity);
                let o = n.query_trace_sharded(&qs, 1);
                ("inline", o, n)
            },
            {
                let mut n = net(base.wrapping_add(41), capacity);
                let o = n.query_batch_sharded(&qs, 1);
                ("engine", o, n)
            },
        ] {
            assert_eq!(out_seq, out_eng, "{label} outcomes, capacity {capacity}");
            assert_eq!(seq.stats(), eng.stats(), "{label} stats");
            let (sc, ec) = (seq.identifier_cache(), eng.identifier_cache());
            assert_eq!(sc.hits(), ec.hits(), "{label} hits, capacity {capacity}");
            assert_eq!(
                sc.misses(),
                ec.misses(),
                "{label} misses, capacity {capacity}"
            );
            assert_eq!(
                sc.evictions(),
                ec.evictions(),
                "{label} evictions, capacity {capacity}"
            );
            assert_eq!(sc.len(), ec.len(), "{label} size, capacity {capacity}");
        }
    }
}

/// The streaming controller (submit / backpressure / drain / shutdown)
/// is equivalent to one batched call over the concatenated trace.
#[test]
fn streaming_engine_equals_batched_run() {
    let seed = fault_seed().wrapping_add(9);
    let mut qs = Vec::new();
    for i in 0..60u32 {
        qs.push(RangeSet::interval((i * 53) % 600, (i * 53) % 600 + 30));
    }
    let opts = EngineOptions {
        shards: 4,
        workers: 3,
        queue: 4, // small: exercise backpressure
    };

    let mut engine = QueryEngine::launch(net(seed, 2), opts);
    let mut streamed = Vec::new();
    for (i, q) in qs.iter().enumerate() {
        engine.submit(q);
        if i % 17 == 0 {
            // interleave partial drains
            streamed.extend(engine.drain().expect("no worker panicked"));
        }
    }
    let (snet, rest) = engine.shutdown();
    streamed.extend(rest.expect("no worker panicked"));

    let mut bnet = net(seed, 2);
    let batched = bnet.query_batch_concurrent_with(&qs, opts);
    assert_eq!(streamed, batched);
    assert_eq!(snet.stats(), bnet.stats());
    assert_eq!(snet.total_partitions(), bnet.total_partitions());
}

/// Identical concurrent runs are deterministic in their outcomes even
/// at high worker counts — the conflict scheduler, not the OS, decides
/// commit order wherever it matters.
#[test]
fn concurrent_runs_are_reproducible() {
    let seed = fault_seed().wrapping_add(17);
    let mut qs = Vec::new();
    for i in 0..80u32 {
        qs.push(RangeSet::interval((i * 29) % 500, (i * 29) % 500 + 25));
    }
    let opts = EngineOptions {
        shards: 7,
        workers: 8,
        queue: 32,
    };
    let run = |_: usize| {
        let mut n = net(seed, 0);
        let o = n.query_batch_concurrent_with(&qs, opts);
        (o, n.stats().clone(), n.total_partitions())
    };
    let (o1, s1, p1) = run(0);
    let (o2, s2, p2) = run(1);
    assert_eq!(o1, o2);
    assert_eq!(s1, s2);
    assert_eq!(p1, p2);
}
