//! The message-passing rendition of the protocol (over `ars-simnet`) must
//! agree, query for query, with the direct-call simulation — same seeds,
//! same ring, same hash groups, same matches, same recall.

use ars::prelude::*;

#[test]
fn direct_and_message_renditions_agree() {
    let config = SystemConfig::default().with_seed(424242);
    let mut direct = RangeSelectNetwork::new(40, config.clone());
    let mut proto = ProtoNetwork::new(40, config);

    let trace = uniform_trace(400, 0, 1000, 7);
    for q in trace.queries() {
        let a = direct.query(q);
        let b = proto.query(q);
        assert_eq!(a.best_match, b.best_match, "match diverged for {q}");
        assert_eq!(a.recall, b.recall, "recall diverged for {q}");
        assert_eq!(a.exact, b.exact, "exactness diverged for {q}");
        assert_eq!(a.similarity, b.similarity, "similarity diverged for {q}");
        assert_eq!(a.identifiers, b.identifiers, "identifiers diverged for {q}");
        // Hop counts agree too: same origins (same RNG stream), same ring.
        assert_eq!(a.hops, b.hops, "hops diverged for {q}");
    }
}

#[test]
fn renditions_agree_under_containment_and_padding() {
    let config = SystemConfig::default()
        .with_matching(MatchMeasure::Containment)
        .with_padding(0.2)
        .with_seed(777);
    let mut direct = RangeSelectNetwork::new(25, config.clone());
    let mut proto = ProtoNetwork::new(25, config);
    let trace = uniform_trace(200, 0, 1000, 9);
    for q in trace.queries() {
        let a = direct.query(q);
        let b = proto.query(q);
        assert_eq!(a.best_match, b.best_match);
        assert_eq!(a.recall, b.recall);
    }
}

#[test]
fn message_rendition_pays_routing_messages() {
    let mut proto = ProtoNetwork::new(100, SystemConfig::default().with_seed(5));
    let before = proto.messages_delivered();
    proto.query(&RangeSet::interval(100, 200));
    let spent = proto.messages_delivered() - before;
    // 5 FindMatch requests (several hops each) + 5 replies + 5 stores + 5
    // acks. In a 100-peer ring mean hops ≈ 3–4, so expect ≥ 20 messages.
    assert!(spent >= 20, "only {spent} messages for one query");
}
