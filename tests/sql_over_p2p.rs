//! The paper's §2 scenario end to end: an SQL query is parsed, planned
//! with selects pushed to the leaves, the leaf partitions are fetched
//! through the P2P cache, and the joins/projection run locally at the
//! querying peer. Results must equal direct evaluation at the sources,
//! and repeats must be served from the cache.

use ars::core::data::DataNetwork;
use ars::prelude::*;
use ars::relation::exec::BaseTables;
use ars::relation::schema::medical;
use ars::relation::value::days_since_1900;

const PAPER_QUERY: &str = "SELECT Prescription.prescription \
     FROM Patient, Diagnosis, Prescription \
     WHERE 30 <= age AND age <= 50 \
     AND diagnosis = 'Glaucoma' \
     AND Patient.patient_id = Diagnosis.patient_id \
     AND 01-01-2000 <= date AND date <= 12-31-2002 \
     AND Diagnosis.prescription_id = Prescription.prescription_id";

fn medical_sources() -> BaseTables {
    let mut tables = BaseTables::new();
    tables.register(Relation::new(
        medical::patient(),
        (0..400u32)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::from(format!("patient{i}")),
                    Value::Int(20 + (i % 60)),
                ]
            })
            .collect(),
    ));
    tables.register(Relation::new(
        medical::diagnosis(),
        (0..400u32)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::from(if i % 3 == 0 { "Glaucoma" } else { "Cataract" }),
                    Value::Int(i % 10),
                    Value::Int(i),
                ]
            })
            .collect(),
    ));
    let base_day = days_since_1900(1998, 1, 1);
    tables.register(Relation::new(
        medical::prescription(),
        (0..400u32)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Date(base_day + (i * 7) % 2900), // spread over ~8 years
                    Value::from(format!("drug{}", i % 40)),
                    Value::from(""),
                ]
            })
            .collect(),
    ));
    tables
}

fn medical_planner() -> Planner {
    let mut p = Planner::new();
    p.register(medical::patient())
        .register(medical::diagnosis())
        .register(medical::prescription())
        .register(medical::physician());
    p
}

fn sorted_strings(rel: &Relation) -> Vec<String> {
    let mut v: Vec<String> = rel.tuples().iter().map(|t| format!("{}", t[0])).collect();
    v.sort();
    v
}

#[test]
fn paper_query_over_p2p_equals_direct_evaluation() {
    let planner = medical_planner();
    let plan = planner.plan(&parse_query(PAPER_QUERY).unwrap()).unwrap();

    // Direct evaluation at the sources.
    let mut direct_tables = medical_sources();
    let direct = execute(&plan, &mut direct_tables).unwrap();
    assert!(!direct.is_empty(), "test data must produce answers");

    // Evaluation with leaves fetched through the P2P system.
    let mut p2p = DataNetwork::new(60, SystemConfig::default().with_seed(33), medical_sources());
    let via_p2p = execute(&plan, &mut p2p).unwrap();
    assert_eq!(sorted_strings(&via_p2p), sorted_strings(&direct));
    // All three leaves had to go to the sources the first time (the
    // Diagnosis leaf is a pure string-equality select, also source-served).
    assert_eq!(p2p.stats.source_fetches, 3);
}

#[test]
fn repeated_query_serves_ranged_leaves_from_cache() {
    let planner = medical_planner();
    let plan = planner.plan(&parse_query(PAPER_QUERY).unwrap()).unwrap();
    let mut p2p = DataNetwork::new(60, SystemConfig::default().with_seed(33), medical_sources());

    let first = execute(&plan, &mut p2p).unwrap();
    let sources_after_first = p2p.stats.source_fetches;
    let second = execute(&plan, &mut p2p).unwrap();
    assert_eq!(sorted_strings(&first), sorted_strings(&second));

    // The two ranged leaves (Patient.age, Prescription.date) now hit the
    // cache; only the unranged Diagnosis leaf returns to the source.
    assert_eq!(p2p.stats.cache_hits, 2);
    assert_eq!(p2p.stats.source_fetches, sources_after_first + 1);
}

#[test]
fn similar_query_can_reuse_broader_partition() {
    // Cache age 25–55, then ask 30–50 with containment matching: covered.
    let planner = medical_planner();
    let mut p2p = DataNetwork::new(
        60,
        SystemConfig::default()
            .with_matching(MatchMeasure::Containment)
            .with_seed(12),
        medical_sources(),
    );
    let broad = planner
        .plan(&parse_query("SELECT * FROM Patient WHERE 25 <= age AND age <= 55").unwrap())
        .unwrap();
    execute(&broad, &mut p2p).unwrap();

    let narrow = planner
        .plan(&parse_query("SELECT * FROM Patient WHERE 30 <= age AND age <= 50").unwrap())
        .unwrap();
    let via_p2p = execute(&narrow, &mut p2p).unwrap();

    // Correctness regardless of whether LSH found the broader partition.
    let mut direct_tables = medical_sources();
    let direct = execute(&narrow, &mut direct_tables).unwrap();
    assert_eq!(via_p2p.len(), direct.len());
}

#[test]
fn select_star_and_projection_agree_between_paths() {
    let planner = medical_planner();
    for sql in [
        "SELECT * FROM Patient WHERE 40 <= age AND age <= 45",
        "SELECT name FROM Patient WHERE 40 <= age AND age <= 45",
        "SELECT Patient.name, Diagnosis.diagnosis FROM Patient, Diagnosis \
         WHERE 30 <= age AND age <= 35 AND Patient.patient_id = Diagnosis.patient_id",
    ] {
        let plan = planner.plan(&parse_query(sql).unwrap()).unwrap();
        let mut direct_tables = medical_sources();
        let direct = execute(&plan, &mut direct_tables).unwrap();
        let mut p2p = DataNetwork::new(40, SystemConfig::default().with_seed(5), medical_sources());
        let via = execute(&plan, &mut p2p).unwrap();
        assert_eq!(via.len(), direct.len(), "row count diverged for {sql}");
        assert_eq!(
            via.schema().arity(),
            direct.schema().arity(),
            "arity diverged for {sql}"
        );
    }
}
