//! Reproducibility guarantees: everything EXPERIMENTS.md claims is
//! "bit-identical under a fixed seed" actually is.

use ars::prelude::*;

#[test]
fn whole_system_runs_are_bit_identical() {
    let run = || {
        let mut net = RangeSelectNetwork::new(80, SystemConfig::default().with_seed(1234));
        let trace = uniform_trace(500, 0, 1000, 99);
        net.run_trace(trace.queries())
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y);
    }
}

#[test]
fn message_rendition_runs_are_bit_identical() {
    let run = || {
        let mut net = ProtoNetwork::new(25, SystemConfig::default().with_seed(77));
        let trace = uniform_trace(120, 0, 1000, 5);
        trace
            .queries()
            .iter()
            .map(|q| net.query(q))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn traces_and_rings_are_seed_stable() {
    assert_eq!(
        uniform_trace(1000, 0, 1000, 42),
        uniform_trace(1000, 0, 1000, 42)
    );
    assert_eq!(
        Ring::from_seed(200, 7).node_ids(),
        Ring::from_seed(200, 7).node_ids()
    );
    // Different seeds genuinely differ.
    assert_ne!(
        Ring::from_seed(200, 7).node_ids(),
        Ring::from_seed(200, 8).node_ids()
    );
}

#[test]
fn hash_groups_are_seed_stable_across_families() {
    for kind in [
        LshFamilyKind::MinWise,
        LshFamilyKind::ApproxMinWise,
        LshFamilyKind::Linear,
    ] {
        let ids = |seed: u64| {
            let mut rng = DetRng::new(seed);
            let g = HashGroups::generate(kind, 20, 5, &mut rng);
            g.identifiers(&RangeSet::interval(30, 50))
        };
        assert_eq!(ids(3), ids(3), "family {kind}");
        assert_ne!(ids(3), ids(4), "family {kind}");
    }
}

#[test]
fn pinned_identifier_vector_for_the_default_config() {
    // A golden value: if this changes, seeded experiment outputs shift —
    // EXPERIMENTS.md numbers must then be regenerated. (The value itself
    // is arbitrary; its stability is the contract.)
    let mut net = RangeSelectNetwork::new(10, SystemConfig::default());
    let out = net.query(&RangeSet::interval(30, 50));
    assert_eq!(out.identifiers.len(), 5);
    let again =
        RangeSelectNetwork::new(10, SystemConfig::default()).query(&RangeSet::interval(30, 50));
    assert_eq!(out.identifiers, again.identifiers);
}
