//! Gray-failure tolerance integration suite: slow-but-alive peers, the
//! adaptive failure detector and circuit breakers, hedged lookups, and
//! deadline-aware overload shedding.
//!
//! Five angles:
//!
//! 1. message accounting — a `SlowWindow` multiplies latency without
//!    losing anything: the conservation identity
//!    `sent == delivered + dropped + partitioned + queued` holds with the
//!    `slowed` column counted *outside* it, in both the discrete-event
//!    and the threaded runtime;
//! 2. pure observation — with hedging and breakers enabled but **zero**
//!    gray faults, query outcomes, the inventory, and the resilience
//!    ledger are bit-identical to a run with the machinery disabled,
//!    including under churn (proptest);
//! 3. detection — a live network's probes walk a slow peer's breaker
//!    through closed → open, and a healed peer through
//!    half-open → closed, on the deterministic virtual clock;
//! 4. tail tolerance — with a fraction of peers slowed, hedges fire and
//!    win, breaker short-circuits keep the p99 down, and recall is
//!    *identical* to the baseline run (substitutes serve the same
//!    buckets);
//! 5. shedding — the engine's deadline-aware admission keeps its ledger
//!    balanced (`submitted == completed + shed + queued`) and sheds
//!    deterministically.
//!
//! The fixed seed honors `ARS_FAULT_SEED` (default 0) so CI can sweep a
//! small matrix of seeds over the same assertions.

use ars::core::resilient::{BASE_SERVICE, HOP_COST};
use ars::prelude::*;
use ars::simnet::{ConstantLatency, Node, NodeCtx, SimNet};
use proptest::prelude::*;
use std::time::Duration;

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Distinct well-spread query ranges for cache warm/measure phases.
fn trace(n: usize) -> Vec<RangeSet> {
    (0..n as u32)
        .map(|i| {
            let lo = i * 523 % 40_000;
            RangeSet::interval(lo, lo + 60 + (i % 5) * 25)
        })
        .collect()
}

fn grown(n: usize, seed: u64) -> ChurnNetwork {
    let config = SystemConfig::default()
        .with_kl(16, 4)
        .with_matching(MatchMeasure::Containment)
        .with_replication(2)
        .with_seed(seed);
    ChurnNetwork::new(n, config).expect("growth converges")
}

// ---------------------------------------------------------------------
// 1. Message accounting: slow windows delay, never lose.
// ---------------------------------------------------------------------

/// A node that forwards a decrementing counter around the ring.
struct Relay {
    n_nodes: usize,
}

impl Node<u32> for Relay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, _from: usize, msg: u32) {
        if msg > 0 {
            ctx.send((ctx.me + 1) % self.n_nodes, msg - 1);
        }
    }
}

#[test]
fn sim_slow_window_delays_but_conserves() {
    let n = 12;
    let nodes: Vec<Box<dyn Node<u32>>> = (0..n)
        .map(|_| Box::new(Relay { n_nodes: n }) as Box<dyn Node<u32>>)
        .collect();
    let mut sim = SimNet::new(nodes, ConstantLatency(5));
    sim.set_faults(
        FaultPlan::none().with_slow(vec![3, 7], 10, 0, u64::MAX),
        fault_seed(),
    );
    for i in 0..n {
        sim.inject(0, i, 30);
    }
    while sim.step() {
        assert!(
            sim.stats().is_conserved(),
            "conservation violated during slow-window run"
        );
    }
    let stats = sim.stats();
    assert_eq!(stats.queued, 0, "queue must drain");
    assert_eq!(stats.dropped, 0, "gray failure loses nothing");
    assert_eq!(stats.sent, stats.delivered, "every send arrives");
    assert!(stats.slowed > 0, "traffic through nodes 3/7 must be slowed");
    assert!(
        stats.slowed < stats.delivered,
        "slowed is a subset of delivered, not a ledger column"
    );
}

#[test]
fn threaded_slow_window_delays_but_conserves() {
    let n = 8;
    let nodes: Vec<Box<dyn Node<u32> + Send>> = (0..n)
        .map(|_| Box::new(Relay { n_nodes: n }) as Box<dyn Node<u32> + Send>)
        .collect();
    let net = ThreadedNet::spawn_with_faults(
        nodes,
        FaultPlan::none().with_slow(vec![1], 4, 0, u64::MAX),
        fault_seed(),
    );
    for i in 0..n {
        net.inject(0, i, 20);
    }
    assert!(
        net.await_quiescence(Duration::from_secs(10)),
        "slowdown must delay the relay chains, not hang them"
    );
    assert_eq!(net.dropped(), 0, "gray failure loses nothing");
    assert_eq!(net.sent(), net.delivered(), "every send arrives");
    assert!(net.slowed() > 0, "traffic through node 1 must be slowed");
}

// ---------------------------------------------------------------------
// 2. Pure observation: the machinery enabled on a healthy fleet changes
//    nothing — bit for bit.
// ---------------------------------------------------------------------

/// Run the same scripted scenario on two networks grown from the same
/// seed — `featured` has hedging + breakers enabled — and assert the
/// runs are indistinguishable where it matters.
fn assert_pure_observer(n: usize, seed: u64, churn_mid_trace: bool) {
    let mut plain = grown(n, seed);
    let mut featured = grown(n, seed);
    // Default policies: the hedge floor provably exceeds the worst
    // clean-path latency (hop_budget × HOP_COST + BASE_SERVICE), so no
    // hedge can fire, and a healthy peer's suspicion is 0, so no breaker
    // can open — even mid-churn.
    featured.enable_hedging(HedgePolicy::default());
    featured.enable_breakers(BreakerConfig::default());

    let queries = trace(24);
    for (i, q) in queries.iter().enumerate() {
        if churn_mid_trace && i == queries.len() / 2 {
            for net in [&mut plain, &mut featured] {
                net.fail_random(n / 8);
                net.stabilize(256).expect("ring recovers");
            }
        }
        if i % 6 == 0 {
            // Probing is part of the featured machinery, but it is pure
            // observation too — run it on both so the probe ledger also
            // matches exactly.
            assert_eq!(plain.probe_peers(), featured.probe_peers());
        }
        let a = plain.query_resilient(q);
        let b = featured.query_resilient(q);
        assert_eq!(a, b, "outcome diverged at query {}", i);
    }
    assert_eq!(plain.inventory(), featured.inventory());
    assert_eq!(plain.resilience(), featured.resilience());
    let f = featured.resilience();
    assert_eq!(f.hedges_fired, 0, "no hedge may fire on a healthy fleet");
    assert_eq!(f.breaker_opens, 0, "no breaker may open on a healthy fleet");
    assert_eq!(f.breaker_short_circuits, 0);
}

#[test]
fn hedging_and_breakers_are_pure_observers_without_faults() {
    assert_pure_observer(40, 0x0B5E ^ fault_seed(), false);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pure_observer_property_survives_churn(
        n in 24usize..48,
        seed in 0u64..1_000,
        churn in any::<bool>(),
    ) {
        assert_pure_observer(n, seed ^ (fault_seed() << 32), churn);
    }
}

/// The floor the pure-observer argument rests on, pinned as an
/// invariant: if someone lowers the default hedge floor below the worst
/// clean-path latency, this fails before the proptest gets flaky.
#[test]
fn default_hedge_floor_clears_worst_clean_path() {
    let policy = HedgePolicy::default();
    let worst_clean = RetryPolicy::default().hop_budget as u64 * HOP_COST + BASE_SERVICE;
    assert!(
        policy.min_delay > worst_clean,
        "hedge floor {} must exceed worst clean-path latency {}",
        policy.min_delay,
        worst_clean
    );
}

// ---------------------------------------------------------------------
// 3. Detection: breakers open on sustained slowness and close after the
//    peer heals, on the live virtual clock.
// ---------------------------------------------------------------------

#[test]
fn breaker_opens_on_slow_peer_and_recloses_after_heal() {
    let mut net = grown(30, 0xB4EA ^ fault_seed());
    net.enable_breakers(BreakerConfig::default());
    // Teach the detector healthy baselines.
    for _ in 0..3 {
        net.probe_peers();
    }
    let victim = net.chord().node_ids()[0];
    assert_eq!(net.breaker_state(victim), Some(BreakerState::Closed));

    net.set_slow(victim, 10);
    net.probe_peers(); // first suspicious sample
    net.probe_peers(); // second trips the breaker (failure_threshold = 2)
    assert_eq!(net.breaker_state(victim), Some(BreakerState::Open));
    let opens = net.resilience().breaker_opens;
    assert!(opens >= 1, "the trip must be counted");

    // Still slow at the half-open probe: the breaker re-opens (estimates
    // are frozen while non-closed, so the degraded period cannot drift
    // the baseline up and sneak the peer back in). Probes while Open are
    // short-circuited, so the re-open happens exactly at the first probe
    // landing in the half-open window — walk the clock until then.
    let mut sweeps = 0;
    while net.resilience().breaker_opens == opens {
        net.probe_peers();
        sweeps += 1;
        assert!(sweeps < 100, "breaker never re-opened at half-open probe");
    }
    assert_eq!(net.breaker_state(victim), Some(BreakerState::Open));

    // Healed: the next half-open probe sees a healthy sample and closes.
    net.clear_slow(victim);
    let mut sweeps = 0;
    while net.breaker_state(victim) != Some(BreakerState::Closed) {
        net.probe_peers();
        sweeps += 1;
        assert!(sweeps < 100, "healed peer's breaker never re-closed");
    }
    // And it stays closed: the frozen healthy baseline still fits.
    net.probe_peers();
    assert_eq!(net.breaker_state(victim), Some(BreakerState::Closed));
}

// ---------------------------------------------------------------------
// 4. Tail tolerance: hedges win, short-circuits cut the tail, recall
//    never moves.
// ---------------------------------------------------------------------

/// The tuned policy used for converged-ring measurements (the default
/// floor is conservative enough for churning networks; here routes are
/// short, so 500 still never fires on healthy peers).
fn tuned_hedge() -> HedgePolicy {
    HedgePolicy {
        min_delay: 500,
        ..HedgePolicy::default()
    }
}

/// Warm, slow 20% of the fleet 10×, measure 2 rounds. Returns
/// (total latency, mean recall, outcomes-influencing digest).
fn measured_run(
    net: &mut ChurnNetwork,
    with_breaker_probes: bool,
) -> (u64, f64, Vec<(f64, bool, usize)>) {
    let queries = trace(40);
    for q in &queries {
        net.query_resilient(q);
    }
    if with_breaker_probes {
        for _ in 0..3 {
            net.probe_peers();
        }
    }
    net.slow_fraction(0.2, 10);
    if with_breaker_probes {
        for _ in 0..2 {
            net.probe_peers();
        }
    }
    let mut total = 0u64;
    let mut recall = 0.0;
    let mut digest = Vec::new();
    for _ in 0..2 {
        for q in &queries {
            let (out, lat) = net.query_timed(q);
            total += lat;
            recall += out.recall;
            digest.push((out.recall, out.exact, out.hops.len()));
        }
    }
    (total, recall / (2 * queries.len()) as f64, digest)
}

#[test]
fn hedges_fire_win_and_cut_latency_under_slowness() {
    let seed = 0x6ED6 ^ fault_seed();
    let mut baseline = grown(40, seed);
    let mut hedged = grown(40, seed);
    hedged.enable_hedging(tuned_hedge());

    let (base_total, base_recall, base_digest) = measured_run(&mut baseline, false);
    let (hedged_total, hedged_recall, hedged_digest) = measured_run(&mut hedged, false);

    let res = hedged.resilience();
    assert!(res.hedges_fired > 0, "slow primaries must trigger hedges");
    assert!(res.hedges_won > 0, "some backups must win the race");
    assert!(
        res.hedge_hops > 0,
        "the losing/backup routes must be costed honestly"
    );
    assert!(
        hedged_total < base_total,
        "hedging must cut total latency ({hedged_total} vs {base_total})"
    );
    // A hedge serves the same bucket from a replica: answers identical.
    assert_eq!(base_recall, hedged_recall, "recall must not move");
    assert_eq!(base_digest, hedged_digest, "answers must be identical");
}

#[test]
fn breaker_short_circuits_cut_tail_and_keep_recall() {
    let seed = 0x5C5C ^ fault_seed();
    let mut baseline = grown(40, seed);
    let mut guarded = grown(40, seed);
    guarded.enable_hedging(tuned_hedge());
    guarded.enable_breakers(BreakerConfig {
        cooldown: 250_000,
        ..BreakerConfig::default()
    });

    let (base_total, base_recall, base_digest) = measured_run(&mut baseline, false);
    let (guard_total, guard_recall, guard_digest) = measured_run(&mut guarded, true);

    let res = guarded.resilience();
    assert!(res.breaker_opens > 0, "slowed peers must trip breakers");
    assert!(
        res.breaker_short_circuits > 0,
        "open breakers must short-circuit fetches"
    );
    assert!(
        guard_total * 2 < base_total,
        "short-circuits should at least halve total latency \
         ({guard_total} vs {base_total})"
    );
    assert_eq!(base_recall, guard_recall, "recall must not move");
    assert_eq!(base_digest, guard_digest, "answers must be identical");
}

#[test]
fn slow_fraction_is_stride_spaced_and_deterministic() {
    let mut net = grown(30, 0x51DE ^ fault_seed());
    let victims = net.slow_fraction(0.2, 4);
    assert_eq!(victims.len(), 6);
    let mut ids = net.chord().node_ids();
    ids.sort_unstable();
    // Stride spacing: consecutive sorted positions are never both slow,
    // so every victim's successor replica is healthy.
    for w in ids.windows(2) {
        assert!(
            !(victims.contains(&w[0]) && victims.contains(&w[1])),
            "adjacent ring positions both slowed"
        );
    }
    // Same membership → same victims (no RNG consumed).
    let mut twin = grown(30, 0x51DE ^ fault_seed());
    assert_eq!(twin.slow_fraction(0.2, 4), victims);
}

// ---------------------------------------------------------------------
// 5. Shedding: deadline-aware admission control keeps its books.
// ---------------------------------------------------------------------

#[test]
fn admission_ledger_balances_under_overload() {
    let net = RangeSelectNetwork::new(30, SystemConfig::default().with_seed(fault_seed() ^ 0xADA));
    let mut engine = QueryEngine::launch(
        net,
        EngineOptions {
            shards: 2,
            workers: 2,
            queue: 32,
        },
    );
    engine.set_service_cost(100);
    let queries = trace(50);
    // A burst at half the service rate: the backlog grows until the
    // 300-unit deadline dooms the excess.
    let decisions: Vec<bool> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| engine.submit_timed(q, i as u64 * 50, 300).is_shed())
        .collect();
    engine.drain().expect("no worker panicked");
    let ledger = engine.admission();
    assert_eq!(
        ledger.submitted,
        ledger.completed + ledger.shed + ledger.queued,
        "admission ledger must balance"
    );
    assert_eq!(ledger.shed, decisions.iter().filter(|&&s| s).count() as u64);
    assert!(ledger.shed > 0, "the overload burst must shed");
    assert!(ledger.completed > 0, "the head of the burst must be served");

    // The shed pattern is a pure function of arrivals — bit-identical on
    // a rebuilt engine.
    let net2 = RangeSelectNetwork::new(30, SystemConfig::default().with_seed(fault_seed() ^ 0xADA));
    let mut engine2 = QueryEngine::launch(
        net2,
        EngineOptions {
            shards: 2,
            workers: 2,
            queue: 32,
        },
    );
    engine2.set_service_cost(100);
    let decisions2: Vec<bool> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| engine2.submit_timed(q, i as u64 * 50, 300).is_shed())
        .collect();
    assert_eq!(decisions, decisions2, "shedding must be deterministic");
    engine2.drain().expect("no worker panicked");
    engine.shutdown().1.expect("no worker panicked");
    engine2.shutdown().1.expect("no worker panicked");
}

// ---------------------------------------------------------------------
// The README's hedged-query example, kept runnable.
// ---------------------------------------------------------------------

#[test]
fn readme_hedged_query_example() {
    // A 40-peer network with successor replication; hedging and
    // circuit breakers watch every fetch.
    let config = SystemConfig::default().with_replication(2).with_seed(7);
    let mut net = ChurnNetwork::new(40, config).expect("ring converges");
    net.enable_hedging(HedgePolicy {
        min_delay: 500,
        ..HedgePolicy::default()
    });
    net.enable_breakers(BreakerConfig::default());

    // Cache a partition, then gray-slow a fifth of the fleet 10×.
    let q = RangeSet::interval(30, 50);
    net.query_resilient(&q);
    net.slow_fraction(0.2, 10);

    // Queries keep answering at healthy-path latency: slow primaries are
    // hedged or short-circuited to replica holders of the same buckets.
    let (out, latency) = net.query_timed(&q);
    assert_eq!(out.recall, 1.0);
    let stats = net.resilience();
    println!(
        "latency {latency}, hedges fired {}, won {}",
        stats.hedges_fired, stats.hedges_won
    );
}
