//! Failure injection across crates: the Chord layer loses peers (abruptly
//! and gracefully) while the system keeps resolving lookups after
//! stabilization. This exercises the dynamic protocol under the kind of
//! churn a real P2P deployment sees.

use ars::prelude::*;

fn grown(n: usize, seed: u64) -> DynamicNetwork {
    let mut rng = DetRng::new(seed);
    let first = Id(rng.next_u32());
    let mut net = DynamicNetwork::bootstrap(first, 8);
    while net.len() < n {
        let id = Id(rng.next_u32());
        if net.node_ids().contains(&id) {
            continue;
        }
        net.join(id, first).expect("join during growth");
        net.stabilize_all(32);
    }
    net.stabilize_until_consistent(64)
        .expect("growth converges");
    net
}

#[test]
fn mass_failure_of_a_quarter_of_the_network_recovers() {
    let mut net = grown(40, 1);
    let mut rng = DetRng::new(2);
    for _ in 0..10 {
        let ids = net.node_ids();
        let victim = ids[rng.gen_index(ids.len())];
        net.fail(victim).unwrap();
    }
    net.stabilize_until_consistent(128)
        .expect("ring did not re-converge after mass failure");
    // All lookups route to the true owners again.
    let ids = net.node_ids();
    for _ in 0..200 {
        let from = ids[rng.gen_index(ids.len())];
        let key = Id(rng.next_u32());
        let (owner, _) = net.lookup(from, key).expect("lookup after recovery");
        assert_eq!(owner, net.true_owner(key));
    }
}

#[test]
fn data_ownership_transfers_on_failure() {
    // When a peer fails, its identifier interval is owned by its successor
    // — the re-cache path of the application layer repopulates data there.
    let mut net = grown(20, 3);
    let ids = net.node_ids();
    let victim = ids[7];
    let key = Id(victim.0.wrapping_sub(1)); // owned by the victim
    assert_eq!(net.true_owner(key), victim);
    net.fail(victim).unwrap();
    net.stabilize_until_consistent(64).expect("recovery");
    let new_owner = net.true_owner(key);
    assert_ne!(new_owner, victim);
    // Routed lookup agrees with ground truth.
    let from = net.node_ids()[0];
    assert_eq!(net.lookup(from, key).unwrap().0, new_owner);
}

#[test]
fn interleaved_joins_and_failures_stay_correct() {
    let mut net = grown(15, 5);
    let mut rng = DetRng::new(6);
    for round in 0..20 {
        if round % 3 == 0 && net.len() > 8 {
            let ids = net.node_ids();
            let victim = ids[rng.gen_index(ids.len())];
            net.fail(victim).unwrap();
        } else {
            let ids = net.node_ids();
            let via = ids[rng.gen_index(ids.len())];
            let new = Id(rng.next_u32());
            if !ids.contains(&new) {
                // Mid-churn joins may fail while routing is degraded;
                // real peers retry later.
                let _ = net.join(new, via);
            }
        }
        net.stabilize_all(8);
    }
    net.stabilize_until_consistent(128)
        .expect("final convergence");
    let ids = net.node_ids();
    let mut rng2 = DetRng::new(7);
    for _ in 0..100 {
        let from = ids[rng2.gen_index(ids.len())];
        let key = Id(rng2.next_u32());
        assert_eq!(net.lookup(from, key).unwrap().0, net.true_owner(key));
    }
}

#[test]
fn graceful_leave_keeps_ring_consistent_without_stabilization() {
    let mut net = grown(20, 9);
    let ids = net.node_ids();
    // A graceful leave notifies neighbours synchronously; one stabilize
    // round at most tidies successor lists.
    net.leave(ids[4]).unwrap();
    net.stabilize_all(8);
    assert!(
        net.stabilize_until_consistent(4).is_some(),
        "graceful leave should not require long recovery"
    );
}
