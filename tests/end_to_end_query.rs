//! End-to-end quality checks over the paper's workload, at reduced scale
//! (2,000 queries instead of 10,000 to keep the suite fast). These tests
//! assert the *shape* of the paper's §5.1–5.2 findings, not exact numbers.

use ars::core::recall::{mean_recall, pct_fully_answered};
use ars::prelude::*;

const N_QUERIES: usize = 2_000;
const N_PEERS: usize = 200;
const SEED: u64 = 20030107;

fn run(config: SystemConfig) -> Vec<QueryOutcome> {
    let trace = uniform_trace(N_QUERIES, 0, 1000, SEED);
    let mut net = RangeSelectNetwork::new(N_PEERS, config);
    let outs = net.run_trace(trace.queries());
    // Paper: drop the first 20% as warm-up.
    let cut = outs.len() / 5;
    outs[cut..].to_vec()
}

#[test]
fn approx_minwise_answers_a_meaningful_fraction_completely() {
    let outs = run(SystemConfig::default().with_seed(SEED));
    let pct = pct_fully_answered(&outs);
    // Paper (Fig. 8): ≈35% of queries fully answered for approx min-wise
    // under Jaccard matching with the 10k trace. The shorter trace caches
    // less, so accept a broad band; the point is it is substantial.
    assert!(
        pct > 10.0 && pct < 80.0,
        "approx min-wise fully-answered = {pct:.1}%"
    );
}

#[test]
fn containment_matching_beats_jaccard_matching() {
    // Fig. 9: switching the bucket's best-match measure from Jaccard to
    // containment roughly doubles the fully-answered fraction.
    let jaccard = run(SystemConfig::default().with_seed(SEED));
    let containment = run(SystemConfig::default()
        .with_matching(MatchMeasure::Containment)
        .with_seed(SEED));
    let pj = pct_fully_answered(&jaccard);
    let pc = pct_fully_answered(&containment);
    assert!(
        pc > pj,
        "containment ({pc:.1}%) should beat Jaccard ({pj:.1}%)"
    );
}

#[test]
fn padding_increases_complete_answers() {
    // Fig. 10: 20% padding lifts the fully-answered fraction further
    // (paper: ≈60% → ≈70% with containment matching).
    let base = run(SystemConfig::default()
        .with_matching(MatchMeasure::Containment)
        .with_seed(SEED));
    let padded = run(SystemConfig::default()
        .with_matching(MatchMeasure::Containment)
        .with_padding(0.2)
        .with_seed(SEED));
    let pb = pct_fully_answered(&base);
    let pp = pct_fully_answered(&padded);
    assert!(pp > pb, "padded ({pp:.1}%) should beat unpadded ({pb:.1}%)");
}

#[test]
fn skewed_workloads_cache_much_better_than_uniform() {
    // The motivation in §1–2: P2P users ask popular broad queries, so the
    // cache should shine under skew. Zipf-distributed queries repeat, and
    // exact repeats always hit.
    let mut net = RangeSelectNetwork::new(N_PEERS, SystemConfig::default().with_seed(SEED));
    let trace = zipf_trace(N_QUERIES, 0, 1000, 100, 1.2, 60, SEED);
    let outs = net.run_trace(trace.queries());
    let cut = outs.len() / 5;
    let zipf_pct = pct_fully_answered(&outs[cut..]);
    let uniform_pct = pct_fully_answered(&run(SystemConfig::default().with_seed(SEED)));
    assert!(
        zipf_pct > uniform_pct,
        "zipf ({zipf_pct:.1}%) should beat uniform ({uniform_pct:.1}%)"
    );
    assert!(zipf_pct > 50.0, "zipf fully-answered only {zipf_pct:.1}%");
}

#[test]
fn hop_counts_stay_logarithmic_during_query_stream() {
    let trace = uniform_trace(500, 0, 1000, SEED);
    let mut net = RangeSelectNetwork::new(1000, SystemConfig::default().with_seed(SEED));
    let outs = net.run_trace(trace.queries());
    let mean_hops: f64 = outs
        .iter()
        .flat_map(|o| o.hops.iter().map(|&h| h as f64))
        .sum::<f64>()
        / (outs.len() * 5) as f64;
    // ½·log₂(1000) ≈ 5.
    assert!(
        (3.0..7.0).contains(&mean_hops),
        "mean hops {mean_hops:.2} outside the Chord band"
    );
}

#[test]
fn local_index_never_hurts_recall() {
    // §5.3: searching all buckets at the contacted peer is at least as
    // good per query as looking in one bucket — same identifiers, strictly
    // more candidates.
    let trace = uniform_trace(800, 0, 1000, SEED);
    let mut plain = RangeSelectNetwork::new(50, SystemConfig::default().with_seed(SEED));
    let mut indexed = RangeSelectNetwork::new(
        50,
        SystemConfig::default()
            .with_local_index(true)
            .with_seed(SEED),
    );
    let outs_plain = plain.run_trace(trace.queries());
    let outs_indexed = indexed.run_trace(trace.queries());
    let mr_plain = mean_recall(&outs_plain);
    let mr_indexed = mean_recall(&outs_indexed);
    assert!(
        mr_indexed >= mr_plain,
        "local index mean recall {mr_indexed:.3} below plain {mr_plain:.3}"
    );
}

#[test]
fn exact_repeats_always_hit() {
    let mut net = RangeSelectNetwork::new(100, SystemConfig::default().with_seed(SEED));
    let trace = uniform_trace(300, 0, 1000, SEED);
    // Prime the cache.
    net.run_trace(trace.queries());
    // Every re-issued query must now be answered completely.
    let again = net.run_trace(trace.queries());
    for out in &again {
        assert_eq!(
            out.recall, 1.0,
            "repeated query {} not fully answered",
            out.query
        );
    }
}
