//! Pinned golden digests of the default query paths.
//!
//! `PlacementMode::Independent` (the default) must stay bit-identical to
//! the pre-layered-placement query paths: these digests were captured on
//! the commit *before* multi-probe and layered placement landed, over a
//! fixed trace at seeds 0–3, and fold every field of every
//! [`ars_core::QueryOutcome`] plus the final stats and cache counters.
//! Any change to the default path's outcomes — identifiers, routing,
//! matching, caching, stats — moves a digest and fails loudly here.
//!
//! Run with `ARS_PRINT_GOLDENS=1` to print freshly computed digests
//! (the capture procedure; see EXPERIMENTS.md).

use ars_core::config::MatchMeasure;
use ars_core::{RangeSelectNetwork, SystemConfig};
use ars_lsh::RangeSet;

/// FNV-1a over a byte slice, folded into `h`.
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// The fixed golden trace: popular repeats, small jitters around them
/// (the regime LSH placement exists for), and cold singletons.
fn golden_trace() -> Vec<RangeSet> {
    let mut qs = Vec::new();
    for i in 0..60u32 {
        let lo = (i * 53) % 1200;
        qs.push(RangeSet::interval(lo, lo + 20 + (i % 5) * 40));
        if i % 3 == 0 {
            qs.push(RangeSet::interval(400, 520)); // popular repeat
        }
        if i % 4 == 0 {
            // Jittered neighbor of the popular range.
            qs.push(RangeSet::interval(400 + (i % 3), 520 + (i % 2)));
        }
        if i % 7 == 0 {
            qs.push(RangeSet::from_intervals([(30, 90), (2_000, 2_300)]));
        }
    }
    qs
}

/// Digest of the sequential path under `config`: every outcome's full
/// debug rendering, then the final stats and cache counters.
///
/// The digests predate the within-query identifier dedup, whose entire
/// observable effect on the default path is sharper lookup accounting: a
/// duplicate identifier no longer routes, so `hops` drops its entry and
/// `attempts`/`lookups`/`total_hops` shrink by exactly the duplicate's
/// share. Everything else — matching, caching, RNG draws, routing of the
/// first occurrence — must be untouched. We pin that by *reconstructing*
/// the pre-dedup rendering (each duplicate's hop equals its first
/// occurrence's hop, so the reconstruction is exact) and digesting that;
/// any deviation beyond pure dedup cannot reproduce the old digests.
fn digest(config: SystemConfig) -> u64 {
    let mut net = RangeSelectNetwork::new(48, config);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut saved_hops = 0u64;
    let mut saved_lookups = 0u64;
    for q in &golden_trace() {
        let out = net.query(q);
        // Re-expand hops to one entry per identifier (pre-dedup shape):
        // out.hops holds the distinct identifiers' hops in first-
        // appearance order.
        let mut hop_of: Vec<(u32, usize)> = Vec::new();
        {
            let mut it = out.hops.iter();
            for &ident in &out.identifiers {
                if !hop_of.iter().any(|&(i, _)| i == ident) {
                    hop_of.push((ident, *it.next().expect("one hop per distinct identifier")));
                }
            }
            assert!(it.next().is_none(), "more hops than distinct identifiers");
        }
        let full_hops: Vec<usize> = out
            .identifiers
            .iter()
            .map(|ident| hop_of.iter().find(|&&(i, _)| i == *ident).unwrap().1)
            .collect();
        saved_hops += (full_hops.iter().sum::<usize>() - out.hops.iter().sum::<usize>()) as u64;
        saved_lookups += (full_hops.len() - out.hops.len()) as u64;
        fnv(
            &mut h,
            format!(
                "QueryOutcome {{ query: {:?}, best_match: {:?}, similarity: {:?}, \
                 recall: {:?}, exact: {:?}, stored: {:?}, hops: {:?}, \
                 identifiers: {:?}, peers_contacted: {:?}, attempts: {:?}, \
                 fell_back_to_source: {:?}, partition_degraded: {:?} }}",
                out.query,
                out.best_match,
                out.similarity,
                out.recall,
                out.exact,
                out.stored,
                full_hops,
                out.identifiers,
                out.peers_contacted,
                out.identifiers.len(),
                out.fell_back_to_source,
                out.partition_degraded,
            )
            .as_bytes(),
        );
    }
    // The pre-layered `NetworkStats` debug rendering, reproduced field by
    // field: the digests were captured before the layered-placement
    // counters (dedup/walk/probe) existed, and those must all stay zero on
    // the default path anyway — asserted below so the rendering is
    // faithful, not just format-compatible.
    let s = net.stats();
    assert_eq!(
        s.dedup_saved_lookups, saved_lookups,
        "stats book exactly the per-outcome dedup savings"
    );
    assert_eq!(s.walk_steps, 0, "default path never walks successors");
    assert_eq!(s.probe_checks, 0, "default path never multi-probes");
    fnv(
        &mut h,
        format!(
            "NetworkStats {{ queries: {}, matched: {}, exact: {}, stored: {}, \
             lookups: {}, total_hops: {} }}",
            s.queries,
            s.matched,
            s.exact,
            s.stored,
            s.lookups + saved_lookups,
            s.total_hops + saved_hops
        )
        .as_bytes(),
    );
    fnv(&mut h, &net.identifier_cache().hits().to_le_bytes());
    fnv(&mut h, &net.identifier_cache().misses().to_le_bytes());
    fnv(&mut h, &(net.total_partitions() as u64).to_le_bytes());
    h
}

/// Pre-PR digests of the paper-default configuration at seeds 0–3.
const GOLDEN_DEFAULT: [u64; 4] = [
    0x4ad4_ed63_8600_1955,
    0xed24_04cc_8021_3a76,
    0xae65_0031_5d00_5943,
    0xc43e_fd60_44dd_74be,
];

/// Pre-PR digests of the padded + containment configuration (the other
/// commonly benched operating point) at seeds 0–3.
const GOLDEN_PADDED: [u64; 4] = [
    0x4c9e_2175_5ed1_28ef,
    0x3c5d_328b_d817_23cc,
    0x448d_cbf8_5cdf_ad4b,
    0x87c2_b0f9_9383_f71c,
];

#[test]
fn default_config_outcomes_match_pre_layered_goldens() {
    for seed in 0u64..4 {
        let d = digest(SystemConfig::default().with_seed(seed));
        if std::env::var("ARS_PRINT_GOLDENS").is_ok() {
            println!("default seed {seed}: 0x{d:016x}");
            continue;
        }
        assert_eq!(
            d, GOLDEN_DEFAULT[seed as usize],
            "default-path outcomes diverged from the pre-layered goldens at seed {seed}"
        );
    }
}

#[test]
fn padded_containment_outcomes_match_pre_layered_goldens() {
    for seed in 0u64..4 {
        let d = digest(
            SystemConfig::default()
                .with_seed(seed)
                .with_padding(0.2)
                .with_matching(MatchMeasure::Containment)
                .with_ident_cache_capacity(16),
        );
        if std::env::var("ARS_PRINT_GOLDENS").is_ok() {
            println!("padded seed {seed}: 0x{d:016x}");
            continue;
        }
        assert_eq!(
            d, GOLDEN_PADDED[seed as usize],
            "padded-path outcomes diverged from the pre-layered goldens at seed {seed}"
        );
    }
}
