//! Fault-injection integration suite: arbitrary churn interleavings
//! against the ground-truth oracle, message-accounting conservation under
//! seeded fault plans, fuzz-style graceful-degradation checks through
//! every query path, and the headline replication acceptance criterion
//! (r = 2 keeps recall within 5% of the no-churn baseline under 10%
//! abrupt failures, while r = 1 demonstrably loses buckets).
//!
//! The fixed seed honors `ARS_FAULT_SEED` (default 0) so CI can sweep a
//! small matrix of seeds over the same assertions.

use ars::prelude::*;
use ars::simnet::{ConstantLatency, Node, NodeCtx};
use proptest::prelude::*;
use std::time::Duration;

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Grow a converged dynamic ring of `n` nodes (same idiom as the churn
/// recovery suite).
fn grown(n: usize, seed: u64) -> DynamicNetwork {
    let mut rng = DetRng::new(seed);
    let first = Id(rng.next_u32());
    let mut net = DynamicNetwork::bootstrap(first, 8);
    while net.len() < n {
        let id = Id(rng.next_u32());
        if net.node_ids().contains(&id) {
            continue;
        }
        net.join(id, first).expect("join during growth");
        net.stabilize_all(32);
    }
    net.stabilize_until_consistent(64)
        .expect("growth converges");
    net
}

/// Distinct well-spread query ranges for cache warm/measure phases.
fn trace(n: usize) -> Vec<RangeSet> {
    (0..n as u32)
        .map(|i| {
            let lo = i * 523 % 40_000;
            RangeSet::interval(lo, lo + 60 + (i % 5) * 25)
        })
        .collect()
}

// ---------------------------------------------------------------------
// 1. Arbitrary join/leave/fail interleavings: after stabilization, every
//    live node resolves every key to the ground-truth owner.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_churn_interleaving_converges_to_correct_lookups(
        ops in prop::collection::vec((0u8..3, 0u32..u32::MAX), 1..12),
        key_seed in 0u64..1_000_000,
    ) {
        let mut net = grown(16, 7);
        for (op, val) in ops {
            match op {
                0 => {
                    let id = Id(val);
                    if !net.node_ids().contains(&id) {
                        let via = net.node_ids()[0];
                        net.join(id, via).expect("join into live ring");
                    }
                }
                _ => {
                    // Keep enough nodes alive that the 8-deep successor
                    // lists always span the damage.
                    if net.len() > 6 {
                        let ids = net.node_ids();
                        let victim = ids[val as usize % ids.len()];
                        if op == 1 {
                            net.leave(victim).expect("graceful leave");
                        } else {
                            net.fail(victim).expect("abrupt fail");
                        }
                    }
                }
            }
        }
        prop_assert!(
            net.stabilize_until_consistent(512).is_some(),
            "ring failed to re-converge after churn interleaving"
        );
        let mut rng = DetRng::new(key_seed);
        let ids = net.node_ids();
        for _ in 0..10 {
            let key = Id(rng.next_u32());
            let owner = net.true_owner(key);
            for &from in &ids {
                let (got, _) = net
                    .lookup(from, key)
                    .expect("lookup on converged ring succeeds");
                prop_assert_eq!(got, owner, "lookup disagreed with ground truth");
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. Message accounting: sent == delivered + dropped + queued, at every
//    point in a faulted run, and the queue fully drains.
// ---------------------------------------------------------------------

/// A node that forwards a decrementing counter around the ring.
struct Relay {
    n_nodes: usize,
}

impl Node<u32> for Relay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, _from: usize, msg: u32) {
        if msg > 0 {
            ctx.send((ctx.me + 1) % self.n_nodes, msg - 1);
        }
    }
}

fn relays(n: usize) -> Vec<Box<dyn Node<u32>>> {
    (0..n)
        .map(|_| Box::new(Relay { n_nodes: n }) as Box<dyn Node<u32>>)
        .collect()
}

#[test]
fn sim_accounting_invariant_holds_under_drops() {
    let n = 20;
    let mut sim = SimNet::new(relays(n), ConstantLatency(5));
    sim.set_faults(FaultPlan::none().with_drop(0.10), fault_seed());
    for i in 0..n {
        sim.inject(0, i, 40);
    }
    // Mid-flight: messages are queued, and the ledger already balances.
    assert!(sim.stats().queued > 0, "injections should be in flight");
    assert!(
        sim.stats().is_conserved(),
        "conservation violated mid-flight"
    );
    // Interleave stepping with conservation checks so a transient
    // imbalance cannot hide inside a single long run.
    while sim.step() {
        assert!(
            sim.stats().is_conserved(),
            "conservation violated during run"
        );
    }
    let stats = sim.stats();
    assert_eq!(stats.queued, 0, "queue must drain");
    assert!(
        stats.dropped > 0,
        "10% drop over hundreds of sends loses some"
    );
    assert!(stats.delivered > 0, "most messages still arrive");
    assert_eq!(stats.sent, stats.delivered + stats.dropped);
}

#[test]
fn threaded_net_reaches_quiescence_under_drops() {
    let n = 8;
    let nodes: Vec<Box<dyn Node<u32> + Send>> = (0..n)
        .map(|_| Box::new(Relay { n_nodes: n }) as Box<dyn Node<u32> + Send>)
        .collect();
    let net =
        ThreadedNet::spawn_with_faults(nodes, FaultPlan::none().with_drop(0.30), fault_seed());
    for i in 0..n {
        net.inject(0, i, 25);
    }
    assert!(
        net.await_quiescence(Duration::from_secs(10)),
        "drops must terminate the relay chains, not hang them"
    );
    assert_eq!(net.sent(), net.delivered() + net.dropped());
    assert!(net.dropped() > 0, "30% drop over ~200 sends loses some");
    net.shutdown();
}

// ---------------------------------------------------------------------
// 3. Fuzz: no query path panics under any fault plan; outcomes stay
//    well-formed however hostile the network.
// ---------------------------------------------------------------------

fn well_formed(out: &QueryOutcome, l: usize) {
    assert!(
        (0.0..=1.0).contains(&out.recall),
        "recall out of range: {}",
        out.recall
    );
    assert!(
        (0.0..=1.0).contains(&out.similarity),
        "similarity out of range: {}",
        out.similarity
    );
    assert!(out.hops.len() <= l, "more lookups than hash groups");
    assert!(
        out.identifiers.len() <= l,
        "more identifiers than hash groups"
    );
    assert!(
        out.attempts >= out.hops.len(),
        "attempts must cover every successful lookup"
    );
    if out.fell_back_to_source {
        assert!(out.best_match.is_none(), "fallback implies no cached match");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The message-protocol path under arbitrary seeded fault plans:
    /// drops, duplication, extra delay, crashes, pauses.
    #[test]
    fn proto_query_survives_arbitrary_fault_plans(
        drop_p in 0.0f64..0.8,
        dup_p in 0.0f64..0.5,
        delay_p in 0.0f64..0.5,
        crash in 0usize..12,
        pause in 0usize..12,
        seed in 0u64..1_000_000,
    ) {
        let plan = FaultPlan::none()
            .with_drop(drop_p)
            .with_duplicate(dup_p)
            .with_delay(delay_p, 1, 50)
            .with_crash(crash, 0)
            .with_pause(pause, 10, 500);
        let config = SystemConfig::default().with_kl(8, 2).with_seed(seed);
        let mut net = ProtoNetwork::new_faulty(12, config, plan, seed);
        for q in trace(6) {
            well_formed(&net.query(&q), 2);
            // A repeat of the same query must also stay graceful (the
            // first attempt may or may not have cached anything).
            well_formed(&net.query(&q), 2);
        }
    }

    /// The churn path: abrupt failures plus per-attempt lookup loss, with
    /// no stabilization before querying. `query_resilient` is infallible
    /// and must degrade gracefully; `query_batch` on the static network
    /// stays well-formed on the same trace.
    #[test]
    fn churn_and_static_queries_stay_graceful(
        victims in 0usize..6,
        loss in 0.0f64..0.9,
        replication in 1usize..3,
        seed in 0u64..1_000_000,
    ) {
        let config = SystemConfig::default()
            .with_kl(8, 2)
            .with_replication(replication)
            .with_seed(seed);
        let mut net = ChurnNetwork::new(16, config.clone())
            .expect("growth converges");
        net.fail_random(victims);
        // Deliberately no stabilization: the resilient path must cope
        // with stale fingers and dead successors on its own.
        net.set_lookup_loss(loss);
        for q in trace(8) {
            well_formed(&net.query_resilient(&q), 2);
        }
        let stats = net.resilience();
        prop_assert!(stats.lookups_attempted >= stats.retries);

        let mut fixed = RangeSelectNetwork::new(16, config);
        for out in fixed.query_batch(&trace(8)) {
            well_formed(&out, 2);
        }
    }

    /// Route-cache equivalence: twin churn networks — one with the Chord
    /// route cache at an arbitrary capacity — driven through the same
    /// failures, lookup loss, and resilient query stream produce
    /// identical outcomes in every field except hop counts, which the
    /// cache may only lower. The cache is cleared on every membership and
    /// stabilization event, so no interleaving can make it serve a stale
    /// owner or change the success/retry pattern.
    #[test]
    fn route_cached_queries_equal_uncached_under_arbitrary_churn(
        victims in 0usize..5,
        loss in 0.0f64..0.7,
        capacity in 1usize..200,
        seed in 0u64..1_000_000,
    ) {
        let base = SystemConfig::default().with_kl(8, 2).with_seed(seed);
        let mut plain = ChurnNetwork::new(14, base.clone()).expect("growth converges");
        let mut cached = ChurnNetwork::new(14, base.with_route_cache(capacity))
            .expect("growth converges");
        plain.fail_random(victims);
        cached.fail_random(victims);
        plain.set_lookup_loss(loss);
        cached.set_lookup_loss(loss);
        for (i, q) in trace(8).iter().enumerate() {
            let a = plain.query_resilient(q);
            let b = cached.query_resilient(q);
            prop_assert_eq!(&a.best_match, &b.best_match, "match diverged on query {}", i);
            prop_assert_eq!(&a.identifiers, &b.identifiers, "identifiers diverged on query {}", i);
            prop_assert_eq!(a.stored, b.stored, "stored diverged on query {}", i);
            prop_assert_eq!(a.exact, b.exact, "exact diverged on query {}", i);
            prop_assert_eq!(a.attempts, b.attempts, "attempts diverged on query {}", i);
            prop_assert_eq!(
                a.fell_back_to_source, b.fell_back_to_source,
                "fallback diverged on query {}", i
            );
            prop_assert_eq!(a.hops.len(), b.hops.len(), "lookup count diverged on query {}", i);
            for (ah, bh) in a.hops.iter().zip(&b.hops) {
                prop_assert!(bh <= ah, "cache increased hops on query {}", i);
            }
        }
        prop_assert_eq!(plain.total_partitions(), cached.total_partitions());
        let stats = cached.route_cache_stats();
        prop_assert!(stats.hits + stats.misses > 0, "cache was never consulted");
    }
}

// ---------------------------------------------------------------------
// 4. Acceptance: with r = 2, recall under 10% abrupt failures stays
//    within 5% of the no-churn baseline; with r = 1 buckets are lost.
// ---------------------------------------------------------------------

/// Warm a replicated network, measure baseline recall, crash 10% of the
/// peers, stabilize, and measure again. Returns (baseline recall,
/// faulted recall, partitions before, partitions after).
fn recall_under_failures(replication: usize, seed: u64) -> (f64, f64, usize, usize) {
    const N_PEERS: usize = 40;
    let queries = trace(60);
    // l = 1 so each partition lives at exactly one identifier — with
    // r = 1 a crashed owner loses the bucket, with r = 2 the successor
    // replica keeps it findable. The paper's l = 5 default would mask the
    // contrast behind its five natural copies.
    let config = SystemConfig::default()
        .with_kl(16, 1)
        .with_matching(MatchMeasure::Containment)
        .with_replication(replication)
        .with_seed(0xACCE55 ^ seed);
    let mut net = ChurnNetwork::new(N_PEERS, config).expect("growth converges");
    for q in &queries {
        net.query_resilient(q);
    }
    let mean_recall = |net: &mut ChurnNetwork| {
        let sum: f64 = queries.iter().map(|q| net.query_resilient(q).recall).sum();
        sum / queries.len() as f64
    };
    let baseline = mean_recall(&mut net);
    let before = net.total_partitions();
    net.fail_random(N_PEERS / 10);
    net.stabilize(256).expect("ring recovers");
    // Count survivors before re-querying: the measurement pass itself
    // re-caches lost partitions on miss (soft-state healing).
    let after = net.total_partitions();
    let faulted = mean_recall(&mut net);
    (baseline, faulted, before, after)
}

#[test]
fn replicated_recall_survives_ten_percent_failures() {
    let seed = fault_seed();
    let (baseline, faulted, _, _) = recall_under_failures(2, seed);
    assert!(
        baseline > 0.95,
        "warm replicated cache should answer its own trace (got {baseline:.3})"
    );
    assert!(
        faulted >= baseline - 0.05,
        "r=2 recall {faulted:.3} fell more than 5% below baseline {baseline:.3} (seed {seed})"
    );
}

// ---------------------------------------------------------------------
// 5. Trace artifact: a faulted run under a recording sink exports a
//    well-formed JSON trace; when `ARS_TRACE_OUT` is set (CI does this)
//    the trace is also written there for artifact upload.
// ---------------------------------------------------------------------

#[test]
fn faulted_run_exports_json_trace_artifact() {
    let seed = fault_seed();
    let config = SystemConfig::default()
        .with_kl(8, 2)
        .with_replication(2)
        .with_seed(seed);
    let mut net = ChurnNetwork::new(16, config).expect("growth converges");
    let tel = ars::telemetry::Telemetry::recording();
    net.set_telemetry(tel.clone());
    net.fail_random(3);
    net.set_lookup_loss(0.25);
    for q in trace(10) {
        net.query_resilient(&q);
    }
    let json = tel.to_json();
    // Spot-check the trace is substantive, not an empty shell: the
    // metric vocabulary is present and the ledger made it out intact.
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"resilient.queries\":10"));
    assert!(json.contains("\"resilient.attempts\""));
    assert!(json.contains("\"core.query\""));
    assert!(json.contains("\"events\":["));
    let stats = net.resilience();
    assert!(json.contains(&format!("\"resilient.retries\":{}", stats.retries)));
    if let Ok(path) = std::env::var("ARS_TRACE_OUT") {
        std::fs::write(&path, &json)
            .unwrap_or_else(|e| panic!("writing trace artifact to {path}: {e}"));
    }
}

#[test]
fn unreplicated_failures_demonstrably_lose_buckets() {
    let seed = fault_seed();
    let (baseline, faulted, before, after) = recall_under_failures(1, seed);
    assert!(
        after < before,
        "crashing 10% of peers must lose r=1 partitions ({before} -> {after}, seed {seed})"
    );
    assert!(
        faulted < baseline,
        "r=1 recall should drop below the {baseline:.3} baseline (got {faulted:.3}, seed {seed})"
    );
}
