//! Partition-tolerance integration suite: the network splits into
//! islands, each side keeps answering queries in degraded mode, and after
//! the heal the replica sets reconcile back to the ground-truth oracle.
//!
//! Four angles, mirroring the fault-injection suite's structure:
//!
//! 1. message accounting — a `PartitionWindow` severs cross-island sends
//!    into the `partitioned` ledger column and the conservation identity
//!    `sent == delivered + dropped + partitioned + queued` holds at every
//!    step, in both the discrete-event and the threaded runtime;
//! 2. ring health — split-brain is visible through [`ars::chord`]'s ring
//!    probe exactly while a partition is in force, lookups stay
//!    island-local during the window, and healing restores global
//!    correctness (proptest over minority sizes and churn during the
//!    window);
//! 3. protocol — arbitrary partition/heal/churn/query interleavings keep
//!    `query_resilient` infallible and well-formed, keep the bucket
//!    ledger balanced, and always reconcile: once budgeted anti-entropy
//!    is quiescent the oracle `re_replicate` sweep finds nothing left to
//!    restore (the two repair paths share one fixed point);
//! 4. degraded mode — queries during the window are flagged
//!    `partition_degraded` (never after the heal), island-local cache
//!    writes are counted, and post-heal repair makes every in-window
//!    write globally findable again.
//!
//! The fixed seed honors `ARS_FAULT_SEED` (default 0) so CI can sweep a
//! small matrix of seeds over the same assertions.

use ars::prelude::*;
use ars::simnet::{ConstantLatency, Node, NodeCtx};
use proptest::prelude::*;
use std::time::Duration;

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Grow a converged dynamic ring of `n` nodes (same idiom as the
/// fault-injection suite).
fn grown(n: usize, seed: u64) -> DynamicNetwork {
    let mut rng = DetRng::new(seed);
    let first = Id(rng.next_u32());
    let mut net = DynamicNetwork::bootstrap(first, 8);
    while net.len() < n {
        let id = Id(rng.next_u32());
        if net.node_ids().contains(&id) {
            continue;
        }
        net.join(id, first).expect("join during growth");
        net.stabilize_all(32);
    }
    net.stabilize_until_consistent(64)
        .expect("growth converges");
    net
}

/// Distinct well-spread query ranges for cache warm/measure phases.
fn trace(n: usize) -> Vec<RangeSet> {
    (0..n as u32)
        .map(|i| {
            let lo = i * 523 % 40_000;
            RangeSet::interval(lo, lo + 60 + (i % 5) * 25)
        })
        .collect()
}

fn well_formed(out: &QueryOutcome, l: usize) {
    assert!(
        (0.0..=1.0).contains(&out.recall),
        "recall out of range: {}",
        out.recall
    );
    assert!(
        (0.0..=1.0).contains(&out.similarity),
        "similarity out of range: {}",
        out.similarity
    );
    assert!(out.hops.len() <= l, "more lookups than hash groups");
    assert!(
        out.identifiers.len() <= l,
        "more identifiers than hash groups"
    );
    assert!(
        out.attempts >= out.hops.len(),
        "attempts must cover every successful lookup"
    );
    if out.fell_back_to_source {
        assert!(out.best_match.is_none(), "fallback implies no cached match");
    }
}

/// The bucket ledger identity: every placement, loss, and recovery is
/// counted, so the live copy count is derivable from the stats alone.
fn assert_ledger(net: &ChurnNetwork) {
    let s = net.resilience();
    assert_eq!(
        s.buckets_placed + s.buckets_recovered,
        net.total_partitions() as u64 + s.buckets_lost,
        "ledger violated: placed {} recovered {} live {} lost {}",
        s.buckets_placed,
        s.buckets_recovered,
        net.total_partitions(),
        s.buckets_lost
    );
}

// ---------------------------------------------------------------------
// 1. Message accounting: a partition window moves cross-island sends
//    into the `partitioned` column without breaking conservation.
// ---------------------------------------------------------------------

/// A node that forwards a decrementing counter around the ring — each
/// hop crosses the island boundary twice per lap, so an open window
/// must sever some sends.
struct Relay {
    n_nodes: usize,
}

impl Node<u32> for Relay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, _from: usize, msg: u32) {
        if msg > 0 {
            ctx.send((ctx.me + 1) % self.n_nodes, msg - 1);
        }
    }
}

fn relays(n: usize) -> Vec<Box<dyn Node<u32>>> {
    (0..n)
        .map(|_| Box::new(Relay { n_nodes: n }) as Box<dyn Node<u32>>)
        .collect()
}

#[test]
fn sim_ledger_conserved_through_partition_window() {
    let n = 12;
    let mut sim = SimNet::new(relays(n), ConstantLatency(5));
    // Islands {0,1,2} vs the rest over [20, 400); a light drop rate on
    // top so the partitioned column must stay distinct from `dropped`.
    sim.set_faults(
        FaultPlan::none().with_drop(0.05).with_partition(
            vec![vec![0, 1, 2], (3..n).collect()],
            20,
            400,
        ),
        fault_seed(),
    );
    for i in 0..n {
        sim.inject(0, i, 60);
    }
    assert!(sim.stats().is_conserved(), "conservation violated at start");
    while sim.step() {
        assert!(
            sim.stats().is_conserved(),
            "conservation violated during run"
        );
    }
    let s = sim.stats();
    assert_eq!(s.queued, 0, "queue must drain once the window closes");
    assert!(
        s.partitioned > 0,
        "ring relays cross the cut while the window is open"
    );
    assert!(s.delivered > 0, "same-island relaying continues throughout");
    assert_eq!(s.sent, s.delivered + s.dropped + s.partitioned);
}

#[test]
fn threaded_partition_severs_cross_island_relays() {
    let n = 8;
    let nodes: Vec<Box<dyn Node<u32> + Send>> = (0..n)
        .map(|_| Box::new(Relay { n_nodes: n }) as Box<dyn Node<u32> + Send>)
        .collect();
    // Window open for the whole run: every relay chain dies at its first
    // island boundary, so quiescence is guaranteed and `partitioned`
    // accounts for every severed hop.
    let plan =
        FaultPlan::none().with_partition(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], 0, u64::MAX);
    let net = ThreadedNet::spawn_with_faults(nodes, plan, fault_seed());
    for i in 0..n {
        net.inject(0, i, 25);
    }
    assert!(
        net.await_quiescence(Duration::from_secs(10)),
        "the partition must terminate the relay chains, not hang them"
    );
    assert_eq!(
        net.sent(),
        net.delivered() + net.dropped() + net.partitioned()
    );
    assert!(
        net.partitioned() > 0,
        "chains starting at island 0 hit the cut"
    );
    assert_eq!(net.dropped(), 0, "no drop rate configured");
    net.shutdown();
}

// ---------------------------------------------------------------------
// 2. Ring health: split-brain is observable exactly while the partition
//    is in force, and healing restores ground-truth lookups — under
//    arbitrary minority sizes and churn during the window.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn split_brain_visible_iff_partitioned_and_heal_restores_truth(
        minority in 3usize..7,
        churn in 0u8..4,
        churn_val in 0u32..u32::MAX,
        key_seed in 0u64..1_000_000,
        cache in 1usize..64,
    ) {
        let mut net = grown(16, 7 ^ fault_seed());
        // Route memoization on: repeated lookups below take the cached
        // path, so a stale island route surviving the heal would be
        // caught against the oracles.
        net.set_route_cache_capacity(cache);
        prop_assert!(
            !net.ring_view().is_split_brain(),
            "healthy converged ring misreported as split"
        );
        let ids = net.node_ids();
        let min: Vec<Id> = ids[..minority].to_vec();
        let maj: Vec<Id> = ids[minority..].to_vec();
        net.partition(&[maj.clone(), min.clone()]);
        net.stabilize_until_consistent(128)
            .expect("each island converges onto its own ring");
        // Unconditional extra rounds: successor lists can satisfy the
        // island ground truth with zero rounds (the next island member
        // was already in the 8-deep list), but the split-brain probe
        // reads *predecessor* beliefs, which only island-local
        // stabilize/notify rounds collapse.
        for _ in 0..4 {
            net.stabilize_all(32);
        }
        prop_assert!(net.is_partitioned());
        prop_assert!(
            net.ring_view().is_split_brain(),
            "a stabilized partition must be visible to the ring probe"
        );

        // During the window lookups never leave the observer's island and
        // agree with the island-restricted ownership oracle.
        let mut rng = DetRng::new(key_seed);
        for _ in 0..8 {
            let key = Id(rng.next_u32());
            for &from in &[min[0], maj[0]] {
                // Twice per key: the second resolution is a cache hit and
                // must return the same island-restricted owner.
                for _ in 0..2 {
                    let (owner, _) = net.lookup(from, key).expect("island-local lookup");
                    prop_assert_eq!(owner, net.island_owner(from, key));
                    prop_assert!(net.reachable(from, owner), "lookup left the island");
                }
            }
        }

        // Churn during the window (all against majority members so both
        // islands stay populated), then heal and re-merge.
        match churn {
            0 => {}
            1 => {
                let id = Id(churn_val);
                if !net.node_ids().contains(&id) {
                    net.join(id, maj[0]).expect("join via majority contact");
                }
            }
            2 => net.leave(maj[1]).expect("graceful leave during window"),
            _ => net.fail(maj[2]).expect("abrupt failure during window"),
        }
        net.stabilize_all(32);
        net.heal();
        prop_assert!(!net.is_partitioned());
        net.stabilize_until_consistent(256).expect("healed ring re-merges");
        // A few extra rounds to settle predecessors after the merge.
        net.stabilize_all(32);
        net.stabilize_all(32);
        prop_assert!(
            !net.ring_view().is_split_brain(),
            "healed ring still contested"
        );
        let ids = net.node_ids();
        for _ in 0..8 {
            let key = Id(rng.next_u32());
            let from = ids[rng.gen_index(ids.len())];
            // Twice per key with no stabilization in between: the second
            // resolution is served from the post-heal cache and must still
            // be the *global* owner — no island route outlives the heal.
            for _ in 0..2 {
                let (owner, _) = net.lookup(from, key).expect("post-heal lookup");
                prop_assert_eq!(owner, net.true_owner(key), "post-heal lookup disagreed with ground truth");
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Protocol: arbitrary partition/heal/churn/query interleavings stay
//    graceful, keep the bucket ledger balanced, and reconcile to the
//    oracle fixed point after the final heal.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn partition_interleavings_reconcile_to_oracle_fixed_point(
        ops in prop::collection::vec((0u8..4, 0u32..u32::MAX), 1..10),
        replication in 2usize..4,
        seed in 0u64..100_000,
    ) {
        let config = SystemConfig::default()
            .with_kl(8, 2)
            .with_replication(replication)
            .with_seed(seed ^ (fault_seed() << 32));
        let mut net = ChurnNetwork::new(14, config).expect("growth converges");
        for q in trace(6) {
            well_formed(&net.query_resilient(&q), 2);
        }
        assert_ledger(&net);
        let queries = trace(18);
        for (op, val) in ops {
            match op {
                0 => {
                    let out = net.query_resilient(&queries[val as usize % queries.len()]);
                    well_formed(&out, 2);
                    if out.partition_degraded {
                        prop_assert!(
                            net.is_partitioned(),
                            "degradation flagged on a connected network"
                        );
                    }
                }
                1 => {
                    // Abrupt failure mid-window or mid-health; keep the
                    // ring deep enough for the successor lists.
                    if net.len() > 9 {
                        let ids = net.chord().node_ids();
                        net.fail(ids[val as usize % ids.len()]).expect("fail");
                    }
                }
                2 => {
                    if !net.is_partitioned() {
                        let ids = net.chord().node_ids();
                        let k = 3.min(ids.len() / 3);
                        let min: Vec<Id> = ids[..k].to_vec();
                        let maj: Vec<Id> = ids[k..].to_vec();
                        net.partition(&[maj, min]);
                        // Let the islands collapse (may not fully converge
                        // before the next op — queries must cope anyway).
                        net.stabilize(64);
                    }
                }
                _ => {
                    if net.is_partitioned() {
                        net.heal();
                        net.stabilize(256).expect("healed ring re-merges");
                    }
                }
            }
            assert_ledger(&net);
        }
        if net.is_partitioned() {
            net.heal();
        }
        prop_assert!(net.stabilize(512).is_some(), "final ring re-converges");
        net.settle(2); // settle predecessors so the ring probe clears
        prop_assert!(!net.chord().ring_view().is_split_brain());

        // Reconciliation: budgeted anti-entropy runs to quiescence, after
        // which the oracle re-replication sweep must find *nothing* left
        // to restore — the two repair paths share one fixed point.
        prop_assert!(
            net.repair_until_quiescent(64, 10_000).is_some(),
            "anti-entropy must quiesce on a healed ring"
        );
        let inventory = net.inventory();
        let restored = net.re_replicate();
        prop_assert_eq!(
            restored, 0,
            "anti-entropy quiescence must equal the re_replicate fixed point"
        );
        prop_assert_eq!(net.inventory(), inventory);
        assert_ledger(&net);
    }
}

// ---------------------------------------------------------------------
// 4. Degraded mode: in-window queries are flagged, island-local writes
//    are counted, and after heal + repair everything written during the
//    window is globally findable — with no lingering degradation flags.
// ---------------------------------------------------------------------

#[test]
fn degraded_flags_and_island_writes_reconcile_after_heal() {
    let seed = fault_seed();
    let config = SystemConfig::default()
        .with_replication(2)
        .with_seed(0xDE6_0000 ^ seed);
    let mut net = ChurnNetwork::new(16, config).expect("growth converges");
    for q in trace(10) {
        net.query_resilient(&q); // warm the cache pre-partition
    }
    let ids = net.chord().node_ids();
    let min: Vec<Id> = ids[..4].to_vec();
    let maj: Vec<Id> = ids[4..].to_vec();
    net.partition(&[maj, min]);
    net.stabilize(128);

    let writes_before = net.resilience().partition_writes;
    let mut degraded = 0u64;
    for q in trace(30) {
        // 10 warm repeats + 20 fresh misses cached island-locally.
        let out = net.query_resilient(&q);
        well_formed(&out, 5);
        if out.partition_degraded {
            degraded += 1;
        }
    }
    assert!(
        degraded > 0,
        "a quarter of the ring is unreachable; some query must degrade"
    );
    assert_eq!(
        net.resilience().partition_degraded_queries,
        degraded,
        "stats must mirror the per-outcome flags"
    );
    assert!(
        net.resilience().partition_writes > writes_before,
        "fresh misses during the window must be cached island-locally"
    );
    assert_ledger(&net);

    net.heal();
    net.stabilize(256).expect("healed ring re-merges");
    net.repair_until_quiescent(64, 10_000)
        .expect("post-heal repair quiesces");
    let flagged_before = net.resilience().partition_degraded_queries;
    for q in trace(30) {
        let out = net.query_resilient(&q);
        assert!(
            !out.partition_degraded,
            "healed network must not report degradation"
        );
        assert_eq!(
            out.recall, 1.0,
            "every in-window write must be globally findable after repair"
        );
    }
    assert_eq!(
        net.resilience().partition_degraded_queries,
        flagged_before,
        "degradation counter must freeze after the heal"
    );
    assert_ledger(&net);
}
