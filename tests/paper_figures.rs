//! Golden-figure regression suite: a seed-pinned reproduction of the
//! paper's collision-probability curve (Fig. 2's amplification step with
//! k = 20, l = 5 — the step sits at similarity ≈ 0.9, precisely
//! `step_location(20, 5) ≈ 0.903`) for all three LSH families.
//!
//! Construction: a width-100 interval against the same interval shifted
//! by `d` has Jaccard similarity exactly `(100-d)/(100+d)`, so each
//! x-axis point is exact, not sampled. For each trial we draw fresh
//! hash groups and count a collision when any of the `l` positional
//! group identifiers agree — the event `1 − (1 − J^k)^l` predicts.
//!
//! A kernel or grouping regression (wrong min-hash, broken XOR fold,
//! mis-seeded permutation draw) shifts these rates far outside the bands
//! and fails CI here instead of silently skewing `BENCH_*.json`. The
//! seed honors `ARS_GOLDEN_SEED` (default 0); CI sweeps seeds 0–3.

use ars::lsh::group::step_location;
use ars::lsh::{match_probability, HashGroups, LshFamilyKind, RangeSet};
use ars::prelude::DetRng;

const K: usize = 20;
const L: usize = 5;
const UNIVERSE: u32 = 100;
const TRIALS: u64 = 200;

fn golden_seed() -> u64 {
    std::env::var("ARS_GOLDEN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Offset where the paired intervals start. Never 0: the bit-shuffle
/// permutations fix 0 (`permute(0) == 0`), so any pair of ranges that
/// both contain 0 would share min-hash 0 and collide trivially.
const BASE: u32 = 100;

/// A width-100 interval and the same interval shifted right by `d`:
/// `[BASE, BASE+99]` vs `[BASE+d, BASE+d+99]`. Their Jaccard similarity
/// is exactly `(100-d)/(100+d)`.
///
/// Shifting (rather than nesting) matters: the bit-shuffle permutation
/// families preserve the bit-subset partial order in the sense that a
/// value whose bits are a superset of another in-set value can never be
/// the argmin, so truncating the *top* of an interval never changes the
/// min-hash and nested pairs collide trivially. A shift perturbs the
/// *bottom* of the interval, where the bit-minimal candidates live.
fn shifted_pair(d: u32) -> (RangeSet, RangeSet, f64) {
    let w = UNIVERSE;
    let exact_j = (w - d) as f64 / (w + d) as f64;
    (
        RangeSet::interval(BASE, BASE + w - 1),
        RangeSet::interval(BASE + d, BASE + d + w - 1),
        exact_j,
    )
}

/// Empirical collision probability at each shift point, sharing one
/// hash-group draw per trial across all points (the paper's experiment
/// holds the hash functions fixed while varying the query).
fn collision_rates(family: LshFamilyKind, shifts: &[u32], seed: u64) -> Vec<f64> {
    let pairs: Vec<(RangeSet, RangeSet)> = shifts
        .iter()
        .map(|&d| {
            let (a, b, _) = shifted_pair(d);
            (a, b)
        })
        .collect();
    let mut collisions = vec![0u64; shifts.len()];
    let mut rng = DetRng::new(seed ^ 0x601d_f16e);
    for _ in 0..TRIALS {
        let groups = HashGroups::generate(family, K, L, &mut rng);
        for (i, (a, b)) in pairs.iter().enumerate() {
            let ia = groups.identifiers(a);
            let ib = groups.identifiers(b);
            if ia.iter().zip(&ib).any(|(x, y)| x == y) {
                collisions[i] += 1;
            }
        }
    }
    collisions
        .into_iter()
        .map(|c| c as f64 / TRIALS as f64)
        .collect()
}

/// The shift grid for the golden curve: J ≈ 0.50, 0.70, 0.80, 0.85,
/// 0.905, 0.942, 0.98, 1.0. The amplification step for k = 20, l = 5
/// sits at J ≈ 0.903, between grid points 4 and 5.
const SHIFTS: [u32; 8] = [33, 18, 11, 8, 5, 3, 1, 0];

/// Pure-theory golden figures: the paper's `1 − (1 − J^k)^l` curve for
/// k = 20, l = 5 at the Fig. 2 operating points, and the step location.
/// Deterministic, so the tolerances are purely numerical.
#[test]
fn amplification_theory_matches_paper_figures() {
    let expect = [
        (0.80, 0.0563),
        (0.85, 0.1793),
        (0.90, 0.4770),
        (0.95, 0.8913),
        (1.00, 1.0),
    ];
    for (j, want) in expect {
        let got = match_probability(j, K, L);
        assert!(
            (got - want).abs() < 5e-4,
            "match_probability({j}, {K}, {L}) = {got:.4}, expected {want:.4}"
        );
    }
    let step = step_location(K, L);
    assert!(
        (step - 0.9028).abs() < 5e-4,
        "step_location({K}, {L}) = {step:.4}, expected 0.9028"
    );
    // The step is where the curve is steepest: well below 0.5 a little
    // to its left, well above 0.5 a little to its right.
    assert!(match_probability(step - 0.05, K, L) < 0.25);
    assert!(match_probability(step + 0.05, K, L) > 0.75);
}

/// Seed-pinned empirical reproduction of the collision-probability step
/// for every LSH family the paper proposes.
///
/// The empirical curves sit below the i.i.d. theory (the bit-shuffle
/// permutations are only approximately min-wise independent, and a
/// shifted interval is a worst case for them — see
/// `minwise::tests::zero_is_a_fixed_point`), but the *shape* the P2P
/// system relies on survives: dissimilar ranges essentially never
/// collide, near-identical ranges usually do, and the rise happens just
/// right of the theoretical step at J ≈ 0.903. Bands were calibrated
/// over seeds 0–3 at 200 trials (observed extremes: ≤ 0.08 for
/// J ≤ 0.852; ≥ 0.29 at J = 0.942; ≥ 0.44 at J = 0.98) and include
/// ≈ 2× margin for sampling noise at other seeds.
#[test]
fn collision_curve_reproduces_amplification_step() {
    let seed = golden_seed();
    for family in LshFamilyKind::PAPER_FAMILIES {
        let rates = collision_rates(family, &SHIFTS, seed);
        let label = format!("{family} (seed {seed})");
        // Low flank: J ≤ 0.852 (shifts 33, 18, 11, 8).
        for i in 0..4 {
            let (_, _, j) = shifted_pair(SHIFTS[i]);
            assert!(
                rates[i] <= 0.15,
                "{label}: rate {:.3} at J={j:.3} above low-flank band 0.15",
                rates[i]
            );
        }
        // High flank: J = 0.942, 0.98 (shifts 3, 1).
        assert!(
            rates[5] >= 0.20,
            "{label}: rate {:.3} at J=0.942 below high-flank band 0.20",
            rates[5]
        );
        assert!(
            rates[6] >= 0.35,
            "{label}: rate {:.3} at J=0.980 below high-flank band 0.35",
            rates[6]
        );
        // Identical ranges always collide.
        assert_eq!(
            rates[7], 1.0,
            "{label}: identical ranges must collide every trial"
        );
        // The step itself: a sharp rise between J = 0.852 and J = 0.942.
        assert!(
            rates[5] - rates[3] >= 0.15,
            "{label}: step too shallow ({:.3} -> {:.3})",
            rates[3],
            rates[5]
        );
        // Approximate monotonicity: sampling noise may wiggle, but no
        // point may fall more than 0.10 below its left neighbour.
        for w in rates.windows(2) {
            assert!(
                w[1] >= w[0] - 0.10,
                "{label}: curve not monotone within noise: {rates:?}"
            );
        }
    }
}

/// Print the measured curve for band calibration (run with
/// `--ignored --nocapture`).
#[test]
#[ignore]
fn diagnostic_print_curves() {
    let shifts = SHIFTS;
    for seed in 0..4u64 {
        for family in LshFamilyKind::PAPER_FAMILIES {
            let rates = collision_rates(family, &shifts, seed);
            print!("seed {seed} {family:>14}: ");
            for (&d, r) in shifts.iter().zip(&rates) {
                let (_, _, j) = shifted_pair(d);
                print!("J={j:.3}:{r:.3} ");
            }
            println!();
        }
    }
    print!("theory:          ");
    for d in shifts {
        let (_, _, j) = shifted_pair(d);
        print!("J={j:.3}:{:.3} ", match_probability(j, K, L));
    }
    println!();
    println!("step location = {:.4}", step_location(K, L));
}
