//! Crash-restart recovery and anti-entropy repair, end to end (ISSUE 4).
//!
//! The headline scenario: a 50-peer network at replication r = 2 with
//! durable bucket stores under storage faults (torn tail writes + tail
//! bit flips) warms a query cache, crashes 20% of its peers, restarts
//! them — replaying each peer's op log past whatever the crash tore —
//! runs the anti-entropy repair loop to quiescence, and answers every
//! warmed query with recall exactly 1.000. The r = 1 fail-without-restart
//! contrast (PR 2's soft-state baseline) loses buckets for good.
//!
//! Also here: the repair convergence property (satellite) — after an
//! arbitrary interleaving of fails, leaves, joins, crashes, and restarts,
//! the budgeted digest-exchange repair reaches a fixed point bit-identical
//! to the oracle `re_replicate` sweep, and recall returns to 1.0.
//!
//! Every run honors `ARS_FAULT_SEED` (default 0) and is asserted
//! byte-identical across reruns: same seed, same trace JSON, same final
//! inventory.

use ars::core::InventoryEntry;
use ars::prelude::*;
use proptest::prelude::*;

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn warm_queries(n: usize) -> Vec<RangeSet> {
    (0..n as u32)
        .map(|i| {
            let lo = i * 977 % 30_000;
            RangeSet::interval(lo, lo + 70 + (i % 4) * 30)
        })
        .collect()
}

/// The faulted durable configuration of the headline scenario: torn tail
/// writes on 40% of crashes, a tail bit flip on 10% — carried over from a
/// `FaultPlan`, the workspace's one seed-addressed fault vocabulary.
fn faulted_durability() -> DurabilityConfig {
    let plan = FaultPlan::none().with_storage_faults(0.4, 0.1);
    assert!(plan.has_storage_faults());
    assert!(plan.is_benign(), "transport stays clean in this scenario");
    DurabilityConfig::from_fault_plan(&plan)
}

/// One full run of the headline scenario. Returns everything a
/// determinism comparison needs: the exported trace, the final storage
/// inventory, the per-query recalls after repair, and the recovery stats.
struct ScenarioResult {
    trace_json: String,
    inventory: Vec<InventoryEntry>,
    recalls: Vec<f64>,
    recovered: u64,
    repair_rounds: usize,
}

fn crash_restart_scenario(seed: u64) -> ScenarioResult {
    const N: usize = 50;
    const CRASHES: usize = N / 5; // 20% of the ring
    let config = SystemConfig::default()
        .with_kl(8, 2)
        .with_replication(2)
        .with_seed(seed)
        .with_durability(faulted_durability());
    let mut net = ChurnNetwork::new(N, config).expect("growth converges");
    let tel = Telemetry::recording();
    net.set_telemetry(tel.clone());

    let queries = warm_queries(20);
    for q in &queries {
        let out = net.query_resilient(q);
        assert!(out.stored || out.exact, "warmup must populate the cache");
    }
    for q in &queries {
        assert_eq!(net.query_resilient(q).recall, 1.0, "cache is warm");
    }

    let downed = net.crash_random(CRASHES);
    assert_eq!(downed.len(), CRASHES);
    assert_eq!(net.len(), N - CRASHES);
    for id in &downed {
        net.restart(*id).expect("restart rejoins the ring");
    }
    assert_eq!(net.len(), N);
    net.stabilize(256).expect("ring reconverges");
    let repair_rounds = net
        .repair_until_quiescent(256, 50)
        .expect("repair quiesces under a 50-entry round budget");
    net.publish_ledger();

    let recalls: Vec<f64> = queries
        .iter()
        .map(|q| net.query_resilient(q).recall)
        .collect();
    ScenarioResult {
        trace_json: tel.to_json(),
        inventory: net.inventory(),
        recalls,
        recovered: net.resilience().buckets_recovered,
        repair_rounds,
    }
}

// ---------------------------------------------------------------------
// 1. Headline: 20% crashed + restarted under storage faults, repaired,
//    recall exactly 1.000 — and the whole run replays byte-identically.
// ---------------------------------------------------------------------

#[test]
fn crash_restart_with_repair_restores_full_recall() {
    let result = crash_restart_scenario(fault_seed() ^ 0x2003_0A25);
    if let Ok(path) = std::env::var("ARS_RECOVERY_TRACE_OUT") {
        std::fs::write(&path, &result.trace_json).expect("write recovery trace");
    }
    assert!(
        result.recovered > 0,
        "restarts must replay entries from the durable logs"
    );
    assert!(result.repair_rounds >= 1);
    for (i, recall) in result.recalls.iter().enumerate() {
        assert_eq!(
            *recall, 1.0,
            "query {i} lost recall after crash-restart + repair"
        );
    }
}

#[test]
fn crash_restart_scenario_is_byte_identical_across_reruns() {
    let seed = fault_seed() ^ 0x2003_0A25;
    let a = crash_restart_scenario(seed);
    let b = crash_restart_scenario(seed);
    assert_eq!(
        a.trace_json, b.trace_json,
        "same seed must export the same trace bytes"
    );
    assert_eq!(a.inventory, b.inventory, "same final storage state");
    assert_eq!(a.recalls, b.recalls);
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.repair_rounds, b.repair_rounds);
}

// ---------------------------------------------------------------------
// 2. Contrast: the r = 1 soft-state baseline with fail (no restart)
//    cannot hold full recall — this is what durability + repair buys.
// ---------------------------------------------------------------------

#[test]
fn fail_without_restart_at_r1_loses_recall() {
    const N: usize = 50;
    let config = SystemConfig::default()
        .with_kl(8, 2)
        .with_seed(fault_seed() ^ 0x2003_0A25);
    let mut net = ChurnNetwork::new(N, config).expect("growth converges");
    let queries = warm_queries(20);
    for q in &queries {
        net.query_resilient(q);
    }
    for q in &queries {
        assert_eq!(net.query_resilient(q).recall, 1.0, "cache is warm");
    }
    // Kill the single holder of each of the first query's identifiers:
    // at r = 1 those are the only copies, so the data is gone for good.
    let victim_query = &queries[0];
    let idents = net.query_resilient(victim_query).identifiers;
    for ident in idents {
        let owner = net.replica_owners(ident)[0];
        if net.chord().node_ids().contains(&owner) && net.len() > 1 {
            net.fail(owner).expect("owner is alive");
        }
    }
    net.stabilize(256).expect("recovers");
    let recall = net.query_resilient(victim_query).recall;
    assert!(
        recall < 1.0,
        "failing every holder at r = 1 must lose the bucket (recall {recall})"
    );
    assert!(net.resilience().buckets_lost > 0);
    assert_eq!(net.resilience().buckets_recovered, 0, "nothing comes back");
}

// ---------------------------------------------------------------------
// 3. Convergence property: repair after an arbitrary churn/crash/restart
//    interleaving reaches the oracle fixed point bit-identically, and
//    recall returns to 1.0 at r = 2 once repair quiesces.
// ---------------------------------------------------------------------

/// Replay one generated churn script on a fresh network. The cache is
/// warmed before any churn; crashes park disks (benign storage: nothing
/// is ever torn, so restarts recover everything) and every downed peer is
/// restarted before the verdict.
fn churned_network(ops: &[(u8, u16)], seed: u64) -> (ChurnNetwork, Vec<RangeSet>) {
    let config = SystemConfig::default()
        .with_kl(8, 2)
        .with_replication(2)
        .with_seed(seed)
        .with_durability(DurabilityConfig::default());
    let mut net = ChurnNetwork::new(16, config).expect("growth converges");
    let queries = warm_queries(6);
    for q in &queries {
        net.query_resilient(q);
    }
    let mut downed: Vec<Id> = Vec::new();
    for &(op, arg) in ops {
        match op {
            0 => {
                if net.len() > 8 {
                    net.fail_random(1);
                }
            }
            1 => {
                if net.len() > 8 {
                    let ids = net.chord().node_ids();
                    let _ = net.leave(ids[arg as usize % ids.len()]);
                }
            }
            2 | 3 => {
                if net.len() > 8 {
                    downed.extend(net.crash_random(1));
                }
            }
            _ => {
                if let Some(id) = downed.pop() {
                    net.restart(id).expect("restart rejoins");
                } else {
                    let _ = net.join_random();
                }
            }
        }
    }
    for id in downed {
        net.restart(id).expect("final restarts rejoin");
    }
    net.stabilize(256).expect("ring reconverges");
    (net, queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn repair_converges_to_the_oracle_after_arbitrary_churn(
        ops in prop::collection::vec((0u8..6, any::<u16>()), 1..20),
        budget in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let seed = seed ^ (fault_seed() << 40);
        let (mut repaired, queries) = churned_network(&ops, seed);
        let (mut oracle, _) = churned_network(&ops, seed);
        prop_assert_eq!(
            repaired.inventory(),
            oracle.inventory(),
            "identical scripts must diverge identically"
        );
        repaired
            .repair_until_quiescent(100_000, budget)
            .expect("repair quiesces");
        oracle.re_replicate();
        prop_assert_eq!(
            repaired.inventory(),
            oracle.inventory(),
            "anti-entropy fixed point must equal the oracle sweep bit-for-bit"
        );
        // With r = 2, benign storage, and every crashed peer restarted,
        // no bucket was ever unrecoverable: full recall returns.
        for q in &queries {
            prop_assert_eq!(repaired.query_resilient(q).recall, 1.0);
        }
    }
}
