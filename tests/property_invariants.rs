//! Cross-crate property tests: invariants that tie the layers together,
//! each checked against a brute-force oracle.

use ars::lsh::LshFunction;
use ars::prelude::*;
use ars::relation::exec::BaseTables;
use ars::relation::schema::medical;
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: an arbitrary small multi-interval range set plus its exact
/// value set.
fn range_set_strategy() -> impl Strategy<Value = (RangeSet, HashSet<u32>)> {
    prop::collection::vec((0u32..500, 0u32..40), 0..5).prop_map(|pairs| {
        let intervals: Vec<(u32, u32)> = pairs.into_iter().map(|(lo, w)| (lo, lo + w)).collect();
        let rs = RangeSet::from_intervals(intervals.iter().copied());
        let mut values = HashSet::new();
        for (lo, hi) in intervals {
            values.extend(lo..=hi);
        }
        (rs, values)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// RangeSet algebra agrees with naive sets on every operation.
    #[test]
    fn range_set_algebra_matches_brute_force(
        (a, sa) in range_set_strategy(),
        (b, sb) in range_set_strategy(),
    ) {
        prop_assert_eq!(a.len(), sa.len() as u64);
        prop_assert_eq!(a.intersection_len(&b), sa.intersection(&sb).count() as u64);
        prop_assert_eq!(a.union_len(&b), sa.union(&sb).count() as u64);
        let inter = a.intersection(&b);
        let inter_set: HashSet<u32> = inter.iter().collect();
        let expect: HashSet<u32> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(inter_set, expect);
        // Jaccard from sets.
        let union_count = sa.union(&sb).count();
        if union_count > 0 {
            let expect_j =
                sa.intersection(&sb).count() as f64 / union_count as f64;
            prop_assert!((a.jaccard(&b) - expect_j).abs() < 1e-12);
        }
        // Subset relation.
        prop_assert_eq!(a.is_subset_of(&b), sa.is_subset(&sb));
    }

    /// Difference agrees with naive set subtraction, and partitions the
    /// set: (a ∩ b) ⊎ (a \ b) = a.
    #[test]
    fn difference_matches_brute_force(
        (a, sa) in range_set_strategy(),
        (b, sb) in range_set_strategy(),
    ) {
        let diff = a.difference(&b);
        let got: HashSet<u32> = diff.iter().collect();
        let expect: HashSet<u32> = sa.difference(&sb).copied().collect();
        prop_assert_eq!(got, expect);
        // Partition property.
        prop_assert_eq!(diff.len() + a.intersection_len(&b), a.len());
        prop_assert_eq!(diff.intersection_len(&b), 0);
    }

    /// Padding always contains the original and respects the fraction
    /// bound per interval.
    #[test]
    fn padding_contains_original(
        (a, _) in range_set_strategy(),
        frac in 0.0f64..1.0,
    ) {
        prop_assume!(!a.is_empty());
        let padded = a.pad(frac);
        prop_assert!(a.is_subset_of(&padded));
    }

    /// Identifier computation is a pure function of the range (no hidden
    /// state), and identical ranges always share all l identifiers.
    #[test]
    fn identifiers_are_pure((a, _) in range_set_strategy(), seed in any::<u64>()) {
        prop_assume!(!a.is_empty());
        let mut rng = DetRng::new(seed);
        let groups = HashGroups::generate(LshFamilyKind::ApproxMinWise, 4, 3, &mut rng);
        prop_assert_eq!(groups.identifiers(&a), groups.identifiers(&a.clone()));
    }

    /// Planned + executed single-relation queries equal brute-force
    /// filtering, for arbitrary range bounds.
    #[test]
    fn planner_executor_equals_brute_force(lo in 0u32..100, w in 0u32..60) {
        let hi = lo + w;
        let schema = medical::patient();
        let tuples: Vec<Vec<Value>> = (0..120u32)
            .map(|i| vec![Value::Int(i), Value::from(format!("p{i}")), Value::Int(i % 80)])
            .collect();
        let rel = Relation::new(schema.clone(), tuples.clone());
        let mut tables = BaseTables::new();
        tables.register(rel);

        let mut planner = Planner::new();
        planner.register(schema);
        let sql = format!("SELECT * FROM Patient WHERE {lo} <= age AND age <= {hi}");
        let plan = planner.plan(&parse_query(&sql).unwrap()).unwrap();
        let got = execute(&plan, &mut tables).unwrap();

        let expect = tuples
            .iter()
            .filter(|t| {
                let age = t[2].as_ordinal().unwrap();
                (lo..=hi).contains(&age)
            })
            .count();
        prop_assert_eq!(got.len(), expect);
    }

    /// Chord ownership is stable under observer: looking up the same key
    /// from every node of a ring gives one owner.
    #[test]
    fn lookup_owner_is_origin_independent(seed in any::<u64>(), key in any::<u32>()) {
        let ring = Ring::from_seed(24, seed);
        let owners: HashSet<u32> = ring
            .node_ids()
            .iter()
            .map(|&from| ring.lookup(from, Id(key)).0.0)
            .collect();
        prop_assert_eq!(owners.len(), 1);
    }

    /// The fast min-hash path (range-aware greedy descent for the bit
    /// families, closed form for linear) is bit-for-bit equal to full
    /// enumeration for every paper family, over arbitrary multi-interval
    /// range sets — both uncompiled and compiled.
    #[test]
    fn fast_min_hash_equals_enumeration(
        (q, _) in range_set_strategy(),
        wide_lo in 0u32..100_000,
        wide_w in 1_000u32..20_000,
        seed in any::<u64>(),
    ) {
        prop_assume!(!q.is_empty());
        // Mix in a wide interval so the greedy-descent path (not just the
        // small-set enumeration shortcut) is exercised.
        let wide = q.union(&RangeSet::interval(wide_lo, wide_lo + wide_w));
        let mut rng = DetRng::new(seed);
        for kind in LshFamilyKind::PAPER_FAMILIES {
            let f = LshFunction::random(kind, &mut rng);
            let compiled = f.compile();
            for set in [&q, &wide] {
                let oracle = f.min_hash_enumerate(set);
                prop_assert_eq!(f.min_hash(set), oracle, "{} on {}", kind, set);
                prop_assert_eq!(compiled.min_hash(set), oracle, "compiled {} on {}", kind, set);
            }
        }
    }

    /// Group identifiers through the fast paths equal the enumeration
    /// reference for every paper family.
    #[test]
    fn group_identifiers_equal_enumeration_reference(
        (q, _) in range_set_strategy(),
        seed in any::<u64>(),
    ) {
        prop_assume!(!q.is_empty());
        let mut rng = DetRng::new(seed);
        for kind in LshFamilyKind::PAPER_FAMILIES {
            let groups = HashGroups::generate(kind, 4, 3, &mut rng);
            prop_assert_eq!(groups.identifiers(&q), groups.identifiers_reference(&q));
        }
    }

    /// The fused single-pass group kernels — whole-group structure-of-
    /// arrays evaluation with the segment-decomposed bit-table range
    /// minima — equal the enumeration reference for every paper family,
    /// over arbitrary multi-interval range sets, through both the fused
    /// group objects and the zero-allocation `identifiers_into` buffer
    /// path.
    #[test]
    fn fused_group_identifiers_equal_reference(
        (q, _) in range_set_strategy(),
        wide_lo in 0u32..100_000,
        wide_w in 1_000u32..20_000,
        seed in 0u64..4,
    ) {
        prop_assume!(!q.is_empty());
        // A wide interval forces the multi-segment and kernel-fallback
        // paths, not just the single-segment shortcut.
        let wide = q.union(&RangeSet::interval(wide_lo, wide_lo + wide_w));
        for kind in LshFamilyKind::PAPER_FAMILIES {
            let mut rng = DetRng::new(seed);
            let groups = HashGroups::generate(kind, 6, 3, &mut rng);
            for set in [&q, &wide] {
                let reference = groups.identifiers_reference(set);
                let fused: Vec<u32> = groups
                    .fused_groups()
                    .iter()
                    .map(|g| g.identifier(set))
                    .collect();
                prop_assert_eq!(&fused, &reference, "fused {} seed {} on {}", kind, seed, set);
                let mut buf = vec![0u32; reference.len()];
                groups.identifiers_into(set, &mut buf);
                prop_assert_eq!(&buf, &reference, "into {} seed {} on {}", kind, seed, set);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Multi-probe candidate sequences are prefix-closed: a smaller
    /// budget returns exactly the first entries of a larger budget's
    /// ranking, so raising the budget only ever *adds* candidates (the
    /// superset property recall monotonicity rests on).
    #[test]
    fn probe_candidates_are_prefix_closed(
        (q, _) in range_set_strategy(),
        seed in any::<u64>(),
        small in 0usize..24,
        extra in 1usize..40,
    ) {
        prop_assume!(!q.is_empty());
        let mut rng = DetRng::new(seed);
        let groups = HashGroups::generate(LshFamilyKind::ApproxMinWise, 8, 4, &mut rng);
        let big = groups.probe_candidates(&q, small + extra);
        let little = groups.probe_candidates(&q, small);
        prop_assert!(little.len() <= small);
        prop_assert_eq!(&big[..little.len()], &little[..]);
        // The base identifiers are never re-proposed as probes.
        let base = groups.identifiers(&q);
        for c in &big {
            prop_assert!(!base.contains(&c.identifier));
        }
    }

    /// Layered recall is monotone in the probe budget: against a fixed
    /// stored partition (no cache-on-miss, so query order is irrelevant),
    /// a bigger budget checks a superset of candidate buckets, so the
    /// best containment score can only rise.
    #[test]
    fn layered_recall_monotone_in_probes(
        lo in 0u32..2_000,
        w in 20u32..200,
        dl in 0u32..3,
        dh in 0u32..3,
        seed in 0u64..16,
    ) {
        let stored = RangeSet::interval(lo, lo + w);
        let query = RangeSet::interval(lo + dl, lo + w + dh);
        let mut last_recall = -1.0f64;
        let mut last_matched = false;
        for budget in [0usize, 4, 16, 64] {
            let config = SystemConfig::default()
                .with_seed(seed)
                .with_placement_mode(PlacementMode::Layered)
                .with_probes(budget)
                .with_matching(MatchMeasure::Containment)
                .with_cache_on_miss(false);
            let mut net = RangeSelectNetwork::new(48, config);
            net.store_partition(&stored);
            let out = net.query(&query);
            prop_assert!(
                out.recall >= last_recall,
                "recall fell from {last_recall} to {} at probe budget {budget}",
                out.recall
            );
            prop_assert!(
                out.best_match.is_some() || !last_matched,
                "a match found at a smaller budget vanished at budget {budget}"
            );
            last_recall = out.recall;
            last_matched = out.best_match.is_some();
        }
    }

    /// The layered-placement knobs are inert under the default
    /// `PlacementMode::Independent`: cranking probes, layers, and the
    /// walk window moves no bit of any outcome or of the final stats.
    /// (The goldens in `tests/placement_goldens.rs` additionally pin the
    /// default path to its pre-layered behavior at seeds 0–3.)
    #[test]
    fn independent_mode_ignores_layered_knobs(seed in 0u64..8) {
        let trace: Vec<RangeSet> = (0..24u32)
            .map(|i| {
                let lo = (i * 211) % 900;
                RangeSet::interval(lo, lo + 30 + (i % 3) * 25)
            })
            .collect();
        let mut plain = RangeSelectNetwork::new(32, SystemConfig::default().with_seed(seed));
        let mut knobbed = RangeSelectNetwork::new(
            32,
            SystemConfig::default()
                .with_seed(seed)
                .with_probes(32)
                .with_layers(3)
                .with_walk_window(8),
        );
        for q in &trace {
            let a = plain.query(q);
            let b = knobbed.query(q);
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        prop_assert_eq!(format!("{:?}", plain.stats()), format!("{:?}", knobbed.stats()));
    }
}

/// The seeds `tests/determinism.rs` pins: hash groups drawn from them must
/// produce identifiers unchanged by the range-aware evaluation (the oracle
/// enumerates every value, as the seed revision did).
#[test]
fn pinned_seed_identifiers_unchanged_by_fast_path() {
    for (seed, kinds) in [
        (3u64, LshFamilyKind::PAPER_FAMILIES.as_slice()),
        (4, LshFamilyKind::PAPER_FAMILIES.as_slice()),
    ] {
        for &kind in kinds {
            let mut rng = DetRng::new(seed);
            let groups = HashGroups::generate(kind, 20, 5, &mut rng);
            for q in [
                RangeSet::interval(30, 50),
                RangeSet::interval(0, 10_000),
                RangeSet::from_intervals([(5u32, 80u32), (1_000, 12_000)]),
            ] {
                assert_eq!(
                    groups.identifiers(&q),
                    groups.identifiers_reference(&q),
                    "seed {seed} kind {kind} range {q}"
                );
            }
        }
    }
}
