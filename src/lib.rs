//! # ars — Approximate Range Selection queries in peer-to-peer systems
//!
//! A from-scratch Rust implementation of *Approximate Range Selection
//! Queries in Peer-to-Peer Systems* (Gupta, Agrawal, El Abbadi — CIDR
//! 2003), including every substrate the paper relies on: the three
//! locality-sensitive hash families, a Chord DHT simulator (with SHA-1,
//! churn, and stabilization), a relational mini-engine with a SQL parser
//! and select-pushdown planner, and a deterministic message-passing
//! network simulator.
//!
//! The individual crates are re-exported as modules:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`lsh`] | `ars-lsh` | range sets, min-wise / approx / linear permutations, `l × k` hash groups |
//! | [`chord`] | `ars-chord` | identifier circle, static ring + lookup, dynamic join/leave/stabilize, SHA-1 |
//! | [`relation`] | `ars-relation` | values, schemas, partitions, SQL parser, planner, executor |
//! | [`simnet`] | `ars-simnet` | discrete-event simulator, threaded runtime, wire codec |
//! | [`store`] | `ars-store` | durable bucket stores: CRC-framed op logs, checkpoints, crash-faulted simulated disks |
//! | [`core`] | `ars-core` | the paper's system: buckets, peers, query protocol, padding, recall |
//! | [`workload`] | `ars-workload` | §5.1 uniform trace, Zipf/clustered variants, size sweeps |
//! | [`common`] | `ars-common` | deterministic RNG, fast hashing, statistics, CSV |
//! | [`telemetry`] | `ars-telemetry` | deterministic counters/histograms/spans, JSON trace export |
//!
//! ## Quickstart
//!
//! ```
//! use ars::prelude::*;
//!
//! // A 100-peer system with the paper's parameters (k = 20, l = 5,
//! // approximate min-wise permutations).
//! let mut net = RangeSelectNetwork::new(100, SystemConfig::default());
//!
//! // A peer asks for patients aged 30–50. Nothing is cached yet, so the
//! // query misses — and its partition is cached at the identifier owners.
//! let miss = net.query(&RangeSet::interval(30, 50));
//! assert!(miss.best_match.is_none());
//!
//! // A *similar* query (30–49, Jaccard ≈ 0.95) now finds that partition
//! // with high probability; an identical one always does.
//! let hit = net.query(&RangeSet::interval(30, 50));
//! assert_eq!(hit.recall, 1.0);
//! ```
//!
//! See `examples/` for end-to-end scenarios, including the paper's
//! medical-records join executed over the P2P cache.

#![warn(missing_docs)]

pub use ars_chord as chord;
pub use ars_common as common;
pub use ars_core as core;
pub use ars_lsh as lsh;
pub use ars_relation as relation;
pub use ars_simnet as simnet;
pub use ars_store as store;
pub use ars_telemetry as telemetry;
pub use ars_workload as workload;

/// The commonly-used types in one import.
pub mod prelude {
    pub use ars_chord::{DynamicNetwork, Id, Ring};
    pub use ars_common::{DetRng, Histogram, Summary};
    pub use ars_core::{
        Admission, AdmissionStats, BatchTimings, BreakerConfig, BreakerState, ChurnNetwork,
        CircuitBreaker, DataNetwork, DurabilityConfig, EngineOptions, FailureDetector, HedgePolicy,
        MatchMeasure, PlacementMode, ProtoNetwork, QueryEngine, QueryOutcome, RangeSelectNetwork,
        RepairRound, ResilienceStats, RetryPolicy, SubmitError, SystemConfig,
    };
    pub use ars_lsh::{HashGroups, LshFamilyKind, RangeSet};
    pub use ars_relation::{
        execute, parse_query, HorizontalPartition, LogicalPlan, Planner, Predicate, Relation,
        Schema, Value,
    };
    pub use ars_simnet::{FaultInjector, FaultPlan, SimNet, ThreadedNet};
    pub use ars_store::{BucketStore, SimDisk, StorageFaults, StoreConfig};
    pub use ars_telemetry::{MetricsSnapshot, SpanId, Telemetry, TelemetryEvent};
    pub use ars_workload::{clustered_trace, uniform_trace, zipf_trace, Trace};
}
